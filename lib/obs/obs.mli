(** Structured tracing + metrics for the query pipeline (DESIGN.md §8).

    {b The overhead contract.}  Every instrumentation point —
    [span], [sampled_span], and each [Metrics] update — starts with a
    single load of the enabled flag and a conditional branch.  While
    tracing is disabled nothing else happens: no allocation, no clock
    read, no atomic write.  The flag is write-once configuration (the
    [MYCELIUM_TRACE] environment variable at startup, or [enable] /
    [with_enabled] before a run); it is never flipped mid-phase.

    {b Domain safety.}  Spans are recorded into a per-domain buffer
    reached through [Domain.DLS]; recording takes no lock (a global
    registry mutex is touched once per domain, on its first span), so
    instrumented code is safe inside [Pool] workers.  Metrics are
    shared [Atomic] cells.  Exporters ([console_tree], [chrome_trace],
    [metrics_json]) read every domain's buffer and must only be called
    while no instrumented parallel work is in flight.

    {b Determinism.}  Observability never draws from an [Rng.t] and
    never feeds back into computation: query results, DP noise and
    degradation reports are byte-identical with tracing on or off.
    Timestamps exist only in exported traces, never in results. *)

(** Minimal JSON — the one encoder (and parser) in the tree; the bench
    harness and the exporters share it. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val equal : t -> t -> bool
  (** Structural equality; [Num] compares with [Float.equal] (so [nan]
      equals [nan]) and object fields compare in order. *)

  val to_buf : Buffer.t -> t -> unit
  val to_string : t -> string

  val parse : string -> (t, string) result
  (** Strict parser covering everything [to_string] emits; used by the
      exporter round-trip tests.  [\uXXXX] escapes above 255 decode to
      ['?']. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k], if any. *)
end

(** {1 The switch} *)

val enabled : unit -> bool
val enable : unit -> unit
(** Turn tracing on (idempotent); resets the trace epoch on the
    off->on edge.  Honoured automatically when [MYCELIUM_TRACE] is set
    to [1]/[true]/[on]/[yes] at startup. *)

val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run with tracing forced on, restoring the previous state after. *)

val reset : unit -> unit
(** Clear all recorded spans and metric values (registrations survive)
    and restart the trace epoch.  Only call while no instrumented
    parallel work is in flight. *)

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_attrs : (string * Json.t) list;
  sp_dom : int;  (** recording domain's numeric id *)
  sp_depth : int;  (** nesting depth within that domain *)
  sp_seq : int;  (** per-domain start order *)
  sp_start : float;  (** seconds since the trace epoch *)
  mutable sp_end : float;  (** NaN while the span is still open *)
}

val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a hierarchical span around it
    when tracing is enabled.  Exceptions propagate; the span is closed
    either way. *)

type sampler

val sampler : every:int -> sampler
(** A call counter for hot operations: used with [sampled_span] to
    record one span per [every] calls instead of one per call. *)

val sampled_span : sampler -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

val all_spans : unit -> span list
(** Every recorded span, sorted by start time. *)

val span_count : unit -> int

(** {1 Metrics} *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Registry lookup-or-create; a name is bound to one metric kind
      for the process lifetime. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val default_buckets : float array
  (** Powers of two from 1 to 2^20. *)

  val histogram : ?buckets:float array -> string -> histogram
  (** [buckets] are strictly ascending upper bounds; one overflow
      bucket is added past the last bound. *)

  val observe : histogram -> float -> unit
  val bucket_index : histogram -> float -> int
  (** Index of the bucket [observe] would count [v] in: the first
      bucket whose upper bound is [>= v], or the overflow index
      [Array.length buckets]. *)

  val histogram_counts : histogram -> int array
  val histogram_sum : histogram -> float
  val histogram_count : histogram -> int

  val to_json : unit -> Json.t
  val to_table : unit -> string
end

(** {1 Exporters} *)

val console_tree : unit -> string
(** Spans grouped by domain, indented by nesting depth. *)

val chrome_trace : unit -> Json.t
(** Chrome [trace_event] format (complete "X" events, ts/dur in
    microseconds, tid = recording domain) — loadable in
    [about://tracing] and Perfetto. *)

val chrome_trace_string : unit -> string
val write_chrome_trace : string -> unit

val metrics_json : unit -> Json.t
val metrics_table : unit -> string
