(** A small fixed-size work pool over OCaml 5 [Domain]s.

    The pool exists to parallelise the hot paths of the pipeline —
    per-device contribution build/verify, per-limb RNS/NTT operations,
    sibling subtree aggregation and per-round mixnet delivery — without
    changing any observable result.  The contract every caller relies on:

    {b Determinism.}  [map_array] applies a pure function to each element
    and writes results by index; [reduce] maps in parallel and then folds
    the per-element results {e sequentially in element order}.  Neither the
    number of domains nor the scheduling of chunks can influence the
    output, so query results are byte-identical at 1, 2 or 8 domains.
    Tasks must not share mutable state (in particular [Rng.t] handles —
    see [lib/util/rng.mli]); derive a per-task seed with [Rng.mix64]
    instead.

    {b Nesting.}  A task that itself calls into the pool (e.g. an
    [Rq.mul] inside a per-device build) runs that inner work sequentially
    on its own domain.  This keeps the pool deadlock-free and makes
    library code safe to call from anywhere.

    {b Exceptions.}  If a task raises, the first exception observed is
    re-raised on the caller's domain after all chunks have drained. *)

(* lint: allow interface — a pool is a handle to live domains; identity, not structure, is what distinguishes two pools *)
type t

val create : domains:int -> t
(** [create ~domains] starts a pool that runs tasks on [domains] domains
    ([domains - 1] spawned workers plus the submitting domain).  Values
    [<= 1] yield a purely sequential pool that spawns nothing. *)

val domains : t -> int
(** Number of domains the pool was created with (>= 1). *)

type worker_stats = { tasks_run : int; exceptions_caught : int }

val worker_stats : t -> worker_stats array
(** Per-slot execution counts: slot 0 is the submitting domain, slots
    1..[domains]-1 the spawned workers.

    {b Invariant.}  [tasks_run] counts chunks claimed from the pool's
    shared chunk queue, so summed over all slots it equals the total
    number of chunks submitted through the queue — a deterministic
    quantity — while the per-slot split depends on scheduling and may
    differ between runs.  [exceptions_caught] counts chunks whose task
    raised (the first exception is re-raised to the submitter after the
    job drains; later ones are swallowed but still counted here).
    Chunks that degrade to in-place sequential execution (the 1-domain
    pool, single-element arrays, nested submissions) never enter the
    queue and are not counted.  The same counts aggregate into the
    observability registry as the [pool.chunks_run] /
    [pool.task_exceptions] metrics (see [lib/obs]) when tracing is
    enabled; [worker_stats] itself is always live. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  The pool must be
    idle.  After shutdown the pool behaves sequentially. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f arr] is [Array.map f arr], with the applications of
    [f] distributed over the pool's domains.  [f] must be safe to run
    concurrently with itself on distinct elements. *)

val mapi_array : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed variant of [map_array]. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init pool n f] is [Array.init n f] with [f] run on the pool. *)

val reduce : t -> combine:('b -> 'b -> 'b) -> init:'b -> ('a -> 'b) -> 'a array -> 'b
(** [reduce pool ~combine ~init f arr] maps [f] over [arr] on the pool,
    then folds the results with [combine] sequentially from [init] in
    element order ([combine (... (combine init (f arr.(0))) ...) (f
    arr.(n-1))]).  The fold order is fixed so non-associative combines
    (e.g. float sums) are reproducible at any domain count. *)

(** {1 The process-wide default pool}

    Most call sites use [default ()] rather than threading a pool handle
    through every API.  Its size is resolved, in decreasing precedence,
    from: a [with_domains] override (tests), the [MYCELIUM_DOMAINS]
    environment variable, and the last [configure] call (runtime
    config); the fallback is 1 (sequential). *)

val default : unit -> t
(** The shared pool, (re)sized on demand to the resolved domain count.
    Worker domains are joined automatically at process exit. *)

val configure : domains:int -> unit
(** Set the domain count requested by runtime configuration.  Overridden
    by [MYCELIUM_DOMAINS] and by an active [with_domains]. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains n f] runs [f] with the default pool forced to [n]
    domains (taking precedence over [MYCELIUM_DOMAINS] and [configure]),
    restoring the previous setting afterwards.  Used by the determinism
    tests to compare runs at 1/2/8 domains within one process. *)

val current_domains : unit -> int
(** Domain count the default pool resolves to right now. *)

