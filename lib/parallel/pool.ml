(* A fixed-size domain pool with deterministic map/reduce semantics.

   Design notes:
   - Workers are persistent: spawned once at [create], parked on a
     condition variable between jobs.  A job is published by bumping
     [epoch]; chunks are claimed from a shared counter under the pool
     mutex, so scheduling is dynamic but output placement is by index
     and therefore independent of scheduling.
   - The submitting domain participates in the job, so [create
     ~domains:n] uses exactly [n] domains.
   - Re-entrancy: a task that calls back into the pool must not block
     waiting for workers that may themselves be busy (or be this very
     domain).  A domain-local flag marks "currently inside a pool task";
     submissions made while it is set run sequentially in place. *)

module Obs = Mycelium_obs.Obs

(* Aggregate pool metrics (DESIGN.md §8); per-worker splits are exposed
   through [worker_stats]. *)
let m_chunks = Obs.Metrics.counter Obs.Names.pool_chunks_run
let m_exceptions = Obs.Metrics.counter Obs.Names.pool_task_exceptions
let m_domains = Obs.Metrics.gauge Obs.Names.pool_domains

type worker_stats = { tasks_run : int; exceptions_caught : int }

type state = {
  mutex : Mutex.t;
  work : Condition.t;            (* signalled when a job is published or on stop *)
  finished : Condition.t;        (* signalled when the last chunk completes *)
  mutable epoch : int;           (* job generation counter *)
  mutable job : (int -> unit) option;
  mutable n_chunks : int;
  mutable next_chunk : int;
  mutable completed : int;
  mutable failure : exn option;  (* first exception raised by a chunk *)
  mutable stop : bool;
}

type t = {
  size : int;
  state : state option;          (* None for the sequential pool *)
  mutable workers : unit Domain.t list;
  (* Per-slot (tasks claimed, exceptions caught); slot 0 is the
     submitting domain, slots 1..size-1 the spawned workers.  Updated
     unconditionally (one atomic increment per claimed chunk, amortised
     over the chunk's work) so the counts are available even when the
     metrics registry is disabled. *)
  stats : (int Atomic.t * int Atomic.t) array;
}

let domains t = t.size

let worker_stats t =
  Array.map
    (fun (tasks, exc) ->
      { tasks_run = Atomic.get tasks; exceptions_caught = Atomic.get exc })
    t.stats

(* Set while the current domain is executing a pool task (worker domains
   set it permanently).  Nested submissions check it and degrade to
   sequential execution. *)
let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_task () = Domain.DLS.get in_task_key

(* Claim and run chunks until none remain.  Called with [st.mutex] held;
   returns with it held.  [slot] identifies the draining domain's entry
   in the pool's per-worker stats. *)
let drain_chunks st slot f =
  let tasks, exceptions = slot in
  while st.next_chunk < st.n_chunks do
    let c = st.next_chunk in
    st.next_chunk <- st.next_chunk + 1;
    let skip = st.failure <> None in
    Mutex.unlock st.mutex;
    let err = if skip then None else (try f c; None with e -> Some e) in
    Atomic.incr tasks;
    Obs.Metrics.incr m_chunks;
    if err <> None then begin
      Atomic.incr exceptions;
      Obs.Metrics.incr m_exceptions
    end;
    Mutex.lock st.mutex;
    (match err with
    | Some e when st.failure = None -> st.failure <- Some e
    | _ -> ());
    st.completed <- st.completed + 1;
    if st.completed = st.n_chunks then Condition.broadcast st.finished
  done

let worker st slot =
  Domain.DLS.set in_task_key true;
  let seen = ref 0 in
  Mutex.lock st.mutex;
  (try
     while not st.stop do
       match st.job with
       | Some f when st.epoch <> !seen ->
         seen := st.epoch;
         drain_chunks st slot f
       | _ -> Condition.wait st.work st.mutex
     done
   with e ->
     Mutex.unlock st.mutex;
     raise e);
  Mutex.unlock st.mutex

let make_stats size = Array.init size (fun _ -> (Atomic.make 0, Atomic.make 0))

let create ~domains =
  let size = max 1 domains in
  Obs.Metrics.set m_domains (float_of_int size);
  if size = 1 then { size = 1; state = None; workers = []; stats = make_stats 1 }
  else
    let st =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        job = None;
        n_chunks = 0;
        next_chunk = 0;
        completed = 0;
        failure = None;
        stop = false;
      }
    in
    let stats = make_stats size in
    let workers =
      List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker st stats.(i + 1)))
    in
    { size; state = Some st; workers; stats }

let shutdown t =
  match t.state with
  | None -> ()
  | Some st ->
    Mutex.lock st.mutex;
    st.stop <- true;
    Condition.broadcast st.work;
    Mutex.unlock st.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []

(* Run [f 0 .. f (chunks-1)] across the pool; the caller participates.
   Raises the first task exception after all chunks have drained. *)
let run_chunks t ~chunks f =
  if chunks > 0 then
    match t.state with
    | None ->
      for c = 0 to chunks - 1 do
        f c
      done
    | Some _ when in_task () ->
      for c = 0 to chunks - 1 do
        f c
      done
    | Some st ->
      Obs.span "pool.job" ~attrs:[ ("chunks", Obs.Json.Int chunks) ] @@ fun () ->
      Mutex.lock st.mutex;
      st.job <- Some f;
      st.n_chunks <- chunks;
      st.next_chunk <- 0;
      st.completed <- 0;
      st.failure <- None;
      st.epoch <- st.epoch + 1;
      Condition.broadcast st.work;
      Domain.DLS.set in_task_key true;
      let restore () = Domain.DLS.set in_task_key false in
      (try drain_chunks st t.stats.(0) f
       with e ->
         restore ();
         Mutex.unlock st.mutex;
         raise e);
      restore ();
      while st.completed < st.n_chunks do
        Condition.wait st.finished st.mutex
      done;
      let failure = st.failure in
      st.job <- None;
      st.failure <- None;
      Mutex.unlock st.mutex;
      (match failure with Some e -> raise e | None -> ())

let mapi_array t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 1 || n = 1 || in_task () then Array.mapi f arr
  else begin
    let out = Array.make n None in
    (* A few chunks per domain so a slow element does not serialise the
       tail; chunking only affects scheduling, never results. *)
    let chunks = min n (t.size * 4) in
    let per = (n + chunks - 1) / chunks in
    run_chunks t ~chunks (fun c ->
        let lo = c * per in
        let hi = min n (lo + per) in
        for i = lo to hi - 1 do
          out.(i) <- Some (f i arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array t f arr = mapi_array t (fun _ x -> f x) arr

let init t n f =
  if n < 0 then invalid_arg "Pool.init";
  mapi_array t (fun i () -> f i) (Array.make n ())

let reduce t ~combine ~init f arr =
  Array.fold_left combine init (map_array t f arr)

(* ------------------------------------------------------------------ *)
(* The process-wide default pool                                       *)
(* ------------------------------------------------------------------ *)

let env_domains =
  lazy
    (match Sys.getenv_opt "MYCELIUM_DOMAINS" with
    | None -> None
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None))

let configured = Atomic.make 1
let forced : int option Atomic.t = Atomic.make None

let resolve () =
  match Atomic.get forced with
  | Some n -> n
  | None -> (
    match Lazy.force env_domains with
    | Some n -> n
    | None -> Atomic.get configured)

let current_domains () = resolve ()

let sequential = { size = 1; state = None; workers = []; stats = make_stats 1 }
let current = ref sequential
let current_mutex = Mutex.create ()
let exit_hook = ref false

(* Telemetry source over the live default pool: the per-slot counters
   are plain atomics updated unconditionally, so the sampler sees queue
   progress without forcing pool (re)creation or touching any lock. *)
let () =
  Obs.Sampler.register_source ~name:"pool" (fun () ->
      let p = !current in
      let tasks = ref 0 and exceptions = ref 0 in
      Array.iter
        (fun (t, e) ->
          tasks := !tasks + Atomic.get t;
          exceptions := !exceptions + Atomic.get e)
        p.stats;
      [
        (Obs.Names.pool_domains, float_of_int p.size);
        (Obs.Names.pool_tasks_run, float_of_int !tasks);
        (Obs.Names.pool_exceptions_caught, float_of_int !exceptions);
      ])

(* The default pool is only (re)built from the main domain: tasks never
   call [default] with a different resolved size (nested calls run
   sequentially without touching it), so the lock is belt-and-braces. *)
let default () =
  if Int.equal (!current).size (resolve ()) then !current
  else begin
    Mutex.lock current_mutex;
    let want = resolve () in
    if not (Int.equal (!current).size want) then begin
      shutdown !current;
      current := create ~domains:want;
      if not !exit_hook then begin
        exit_hook := true;
        at_exit (fun () -> shutdown !current)
      end
    end;
    let p = !current in
    Mutex.unlock current_mutex;
    p
  end

let configure ~domains =
  Atomic.set configured (max 1 domains);
  ignore (default ())

let with_domains n f =
  let saved = Atomic.get forced in
  Atomic.set forced (Some (max 1 n));
  Fun.protect
    ~finally:(fun () ->
      Atomic.set forced saved;
      ignore (default ()))
    (fun () ->
      ignore (default ());
      f ())
