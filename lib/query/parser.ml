type error = { message : string; position : int }

type token =
  | INT of int
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | LE
  | GT
  | GE
  | EQUAL
  | EOF

exception Parse_error of string * int

let fail message position = raise (Parse_error (message, position))

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let push t pos = tokens := (t, pos) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' -> push LPAREN pos; incr i
    | ')' -> push RPAREN pos; incr i
    | '[' -> push LBRACK pos; incr i
    | ']' -> push RBRACK pos; incr i
    | ',' -> push COMMA pos; incr i
    | '.' -> push DOT pos; incr i
    | '+' -> push PLUS pos; incr i
    | '-' -> push MINUS pos; incr i
    | '*' -> push STAR pos; incr i
    | '/' -> push SLASH pos; incr i
    | '=' -> push EQUAL pos; incr i
    | '<' ->
      if !i + 1 < n && src.[!i + 1] = '=' then begin push LE pos; i := !i + 2 end
      else begin push LT pos; incr i end
    | '>' ->
      if !i + 1 < n && src.[!i + 1] = '=' then begin push GE pos; i := !i + 2 end
      else begin push GT pos; incr i end
    | '0' .. '9' ->
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
      push (INT (int_of_string (String.sub src !i (!j - !i)))) pos;
      i := !j
    | c when is_ident_char c ->
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      push (IDENT (String.sub src !i (!j - !i))) pos;
      i := !j
    | c -> fail (Printf.sprintf "unexpected character %C" c) pos)
  done;
  push EOF n;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> (EOF, 0)

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let keyword_eq a b = String.equal (String.lowercase_ascii a) (String.lowercase_ascii b)

let expect_keyword st kw =
  match peek st with
  | IDENT s, _ when keyword_eq s kw -> advance st
  | ( ( INT _ | IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS
      | MINUS | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
      pos ) ->
    fail (Printf.sprintf "expected %s" kw) pos

let accept_keyword st kw =
  match peek st with
  | IDENT s, _ when keyword_eq s kw -> advance st; true
  | ( ( INT _ | IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS
      | MINUS | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
      _ ) ->
    false

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st else fail (Printf.sprintf "expected %s" what) pos

let expect_int st =
  match peek st with
  | INT v, _ -> advance st; v
  | ( ( IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS
      | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
      pos ) ->
    fail "expected integer" pos

let expect_ident st =
  match peek st with
  | IDENT s, _ -> advance st; s
  | ( ( INT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS
      | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
      pos ) ->
    fail "expected identifier" pos

(* "IDENT immediately followed by '('" — the lookahead deciding between
   a predicate/grouping function call and a plain column reference.
   Enumerated exhaustively so a new token forces this decision to be
   revisited. *)
let at_fn_call st =
  match peek st with
  | IDENT name, _ -> (
    match peek2 st with
    | LPAREN, _ -> Some name
    | ( ( INT _ | IDENT _ | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS
        | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
        _ ) ->
      None)
  | ( ( INT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS
      | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
      _ ) ->
    None

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let parse_colref st =
  let _, pos = peek st in
  let group_name = expect_ident st in
  expect st DOT "'.'";
  let field_name = expect_ident st in
  let group =
    match String.lowercase_ascii group_name with
    | "self" -> Ast.Self
    | "dest" -> Ast.Dest
    | "edge" -> Ast.Edge
    | other -> fail (Printf.sprintf "unknown column group %s" other) pos
  in
  match Ast.field_of_string field_name with
  | Some field ->
    let c = { Ast.group; field } in
    if not (Ast.colref_valid c) then
      fail (Printf.sprintf "field %s not available in column group %s" field_name group_name) pos;
    c
  | None -> fail (Printf.sprintf "unknown field %s" field_name) pos

let parse_scalar st =
  let primary () =
    match peek st with
    | INT v, _ -> advance st; Ast.Const v
    | IDENT _, _ -> Ast.Col (parse_colref st)
    | ( ( LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS | STAR
        | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
        pos ) ->
      fail "expected integer or column" pos
  in
  let acc = ref (primary ()) in
  let continue_scan = ref true in
  while !continue_scan do
    match peek st with
    | PLUS, pos -> (
      advance st;
      match peek st with
      | INT v, _ -> advance st; acc := Ast.Plus (!acc, v)
      | ( ( IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS
          | MINUS | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
          _ ) ->
        fail "expected integer after +" pos)
    | MINUS, _ -> (
      advance st;
      match peek st with
      | INT v, _ -> advance st; acc := Ast.Minus (!acc, v)
      | IDENT _, _ -> acc := Ast.Minus_col (!acc, parse_colref st)
      | ( ( LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS | STAR
          | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
          pos ) ->
        fail "expected integer or column after -" pos)
    | ( ( INT _ | IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT
        | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
        _ ) ->
      continue_scan := false
  done;
  !acc

let rec parse_pred st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_keyword st "OR" then Ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_atom st in
  if accept_keyword st "AND" then Ast.And (left, parse_and st) else left

and parse_atom st =
  match at_fn_call st with
  | Some name when not (List.exists (keyword_eq name) [ "self"; "dest"; "edge" ]) ->
    (* Predicate function like onSubway(edge.location). *)
    advance st;
    advance st;
    let c = parse_colref st in
    expect st RPAREN "')'";
    Ast.Fn (name, c)
  | Some _ | None -> (
    match peek st with
    | LPAREN, _ ->
      advance st;
      let p = parse_pred st in
      expect st RPAREN "')'";
      p
    | ( ( INT _ | IDENT _ | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS | MINUS
        | STAR | SLASH | LT | LE | GT | GE | EQUAL | EOF ),
        _ ) ->
      let s = parse_scalar st in
      parse_rest st s)

and parse_rest st s =
  match peek st with
  | LT, _ -> advance st; Ast.Cmp (Ast.Lt, s, parse_scalar st)
  | LE, _ -> advance st; Ast.Cmp (Ast.Le, s, parse_scalar st)
  | GT, _ -> advance st; Ast.Cmp (Ast.Gt, s, parse_scalar st)
  | GE, _ -> advance st; Ast.Cmp (Ast.Ge, s, parse_scalar st)
  | EQUAL, _ -> advance st; Ast.Cmp (Ast.Eq, s, parse_scalar st)
  | IDENT kw, _ when keyword_eq kw "IN" ->
    advance st;
    expect st LBRACK "'['";
    let lo = parse_scalar st in
    expect st COMMA "','";
    let hi = parse_scalar st in
    expect st RBRACK "']'";
    Ast.Between (s, lo, hi)
  | ( ( INT _ | IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS
      | MINUS | STAR | SLASH | EOF ),
      pos ) -> (
    match s with
    | Ast.Col c -> Ast.Truthy c
    | Ast.Const _ | Ast.Plus _ | Ast.Minus _ | Ast.Minus_col _ ->
      fail "expected comparison after scalar" pos)

let parse_agg st =
  if accept_keyword st "COUNT" then begin
    expect st LPAREN "'('";
    expect st STAR "'*'";
    expect st RPAREN "')'";
    Ast.Count
  end
  else if accept_keyword st "SUM" then begin
    expect st LPAREN "'('";
    let c = parse_colref st in
    expect st RPAREN "')'";
    Ast.Sum c
  end
  else begin
    let _, pos = peek st in
    fail "expected COUNT or SUM" pos
  end

let parse_output st =
  if accept_keyword st "HISTO" then begin
    expect st LPAREN "'('";
    let a = parse_agg st in
    expect st RPAREN "')'";
    Ast.Histo a
  end
  else if accept_keyword st "GSUM" then begin
    expect st LPAREN "'('";
    let num = parse_agg st in
    let ratio =
      match peek st with
      | SLASH, _ ->
        advance st;
        expect_keyword st "COUNT";
        expect st LPAREN "'('";
        expect st STAR "'*'";
        expect st RPAREN "')'";
        true
      | ( ( INT _ | IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT
          | PLUS | MINUS | STAR | LT | LE | GT | GE | EQUAL | EOF ),
          _ ) ->
        false
    in
    expect st RPAREN "')'";
    Ast.Gsum { num; ratio; clip = None }
  end
  else begin
    let _, pos = peek st in
    fail "expected HISTO or GSUM" pos
  end

let parse_group_by st =
  match at_fn_call st with
  | Some name when not (List.exists (keyword_eq name) [ "self"; "dest"; "edge" ]) ->
    advance st;
    advance st;
    let s = parse_scalar st in
    expect st RPAREN "')'";
    Ast.By_fn (name, s)
  | Some _ | None -> Ast.By_col (parse_colref st)

let parse_query st name =
  expect_keyword st "SELECT";
  let output = parse_output st in
  expect_keyword st "FROM";
  expect_keyword st "neigh";
  expect st LPAREN "'('";
  let hops = expect_int st in
  expect st RPAREN "')'";
  if hops < 1 then fail "neigh(k) requires k >= 1" 0;
  let where = if accept_keyword st "WHERE" then parse_pred st else Ast.True in
  let group_by =
    if accept_keyword st "GROUP" then begin
      expect_keyword st "BY";
      parse_group_by st
    end
    else Ast.No_group
  in
  let output =
    if accept_keyword st "CLIP" then begin
      expect st LBRACK "'['";
      let a = expect_int st in
      expect st COMMA "','";
      let b = expect_int st in
      expect st RBRACK "']'";
      match output with
      | Ast.Gsum { num; ratio; clip = _ } -> Ast.Gsum { num; ratio; clip = Some (a, b) }
      | Ast.Histo _ -> fail "CLIP only applies to GSUM queries" 0
    end
    else output
  in
  (match peek st with
  | EOF, _ -> ()
  | ( ( INT _ | IDENT _ | LPAREN | RPAREN | LBRACK | RBRACK | COMMA | DOT | PLUS
      | MINUS | STAR | SLASH | LT | LE | GT | GE | EQUAL ),
      pos ) ->
    fail "trailing input after query" pos);
  { Ast.name; output; hops; where; group_by }

let parse ?(name = "query") src =
  match lex src with
  | exception Parse_error (message, position) -> Error { message; position }
  | toks -> (
    let st = { toks } in
    match parse_query st name with
    | q -> Ok q
    | exception Parse_error (message, position) -> Error { message; position })

let parse_exn ?name src =
  match parse ?name src with
  | Ok q -> q
  | Error e -> failwith (Printf.sprintf "parse error at %d: %s" e.position e.message)
