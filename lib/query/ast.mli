(** Abstract syntax of Mycelium's query language: the SQL subset of §4
    with the two extensions (HISTO/GSUM output choice and GSUM clipping
    ranges). Queries "see" a table [neigh(k)] with one row per member
    of each origin's k-hop neighborhood and three column groups:
    [self], [dest], and [edge]. *)

type column_group = Self | Dest | Edge

type field =
  | Inf  (** infection status, 0/1 *)
  | T_inf  (** diagnosis day; truthiness = "was diagnosed" *)
  | Age
  | Duration  (** edge.duration *)
  | Contacts  (** edge.contacts *)
  | Last_contact  (** edge.last_contact *)
  | Location  (** edge.location, enum *)
  | Setting  (** edge.setting, enum *)

type colref = { group : column_group; field : field }

(** Integer-valued expressions appearing in predicates. *)
type scalar =
  | Col of colref
  | Const of int
  | Plus of scalar * int
  | Minus of scalar * int
  | Minus_col of scalar * colref
      (** column difference, e.g. [dest.tInf - self.tInf] in Q10 *)

type cmp = Lt | Le | Gt | Ge | Eq

type pred =
  | True
  | And of pred * pred
  | Or of pred * pred
  | Truthy of colref  (** e.g. [self.inf], [dest.tInf] *)
  | Cmp of cmp * scalar * scalar
  | Between of scalar * scalar * scalar  (** x IN [lo, hi] *)
  | Fn of string * colref  (** onSubway(edge.location), isHousehold(...) *)

type agg = Count | Sum of colref

type output =
  | Histo of agg
  | Gsum of { num : agg; ratio : bool; clip : (int * int) option }
      (** [ratio] marks the SUM/COUNT form (secondary attack rates). *)

type group_by =
  | No_group
  | By_col of colref  (** GROUP BY self.age — bucketed to decades *)
  | By_fn of string * scalar  (** GROUP BY stage(dest.tInf - self.tInf) etc. *)

type t = {
  name : string;
  output : output;
  hops : int;
  where : pred;
  group_by : group_by;
}

val field_of_string : string -> field option
val field_to_string : field -> string
val group_to_string : column_group -> string

val compare_field : field -> field -> int
(** Declaration order; total, for sorted field lists. *)

val equal_field : field -> field -> bool
val equal_colref : colref -> colref -> bool
val equal_pred : pred -> pred -> bool

val equal : t -> t -> bool
(** Structural equality of whole queries (exact tree shape — no
    normalization of predicate association). *)

val colref_valid : colref -> bool
(** [edge] columns carry edge fields, [self]/[dest] vertex fields. *)

val pp : Format.formatter -> t -> unit
(** Prints back in (canonicalized) query syntax; [parse (print q)]
    equals [q] up to predicate association. *)

val to_string : t -> string

val fold_preds : ('a -> pred -> 'a) -> 'a -> pred -> 'a
(** Folds over every atomic predicate (leaves of the And/Or tree). *)

val scalar_cols : scalar -> colref list
val pred_cols : pred -> colref list
