module Schema = Mycelium_graph.Schema
module Cg = Mycelium_graph.Contact_graph

type row_ctx = {
  self : Schema.vertex_data;
  dest : Schema.vertex_data;
  edge : Schema.edge_data option;
}

let enum_of_location = function
  | Schema.Household -> 0
  | Schema.Subway -> 1
  | Schema.Workplace -> 2
  | Schema.SocialVenue -> 3
  | Schema.Other -> 4

let enum_of_setting = function Schema.Family -> 0 | Schema.Social -> 1 | Schema.Work -> 2

(* Raw value of a column on a row; None when undefined. *)
let raw_value ctx (c : Ast.colref) =
  let vertex = match c.Ast.group with Ast.Self -> Some ctx.self | Ast.Dest -> Some ctx.dest | Ast.Edge -> None in
  match (c.Ast.group, c.Ast.field) with
  | (Ast.Self | Ast.Dest), Ast.Inf ->
    Option.map (fun (v : Schema.vertex_data) -> if v.Schema.infected then 1 else 0) vertex
  | (Ast.Self | Ast.Dest), Ast.T_inf ->
    Option.bind vertex (fun (v : Schema.vertex_data) -> v.Schema.t_inf)
  | (Ast.Self | Ast.Dest), Ast.Age ->
    Option.map (fun (v : Schema.vertex_data) -> v.Schema.age) vertex
  | Ast.Edge, Ast.Duration -> Option.map (fun e -> e.Schema.duration_min) ctx.edge
  | Ast.Edge, Ast.Contacts -> Option.map (fun e -> e.Schema.contacts) ctx.edge
  | Ast.Edge, Ast.Last_contact -> Option.map (fun e -> e.Schema.last_contact) ctx.edge
  | Ast.Edge, Ast.Location -> Option.map (fun e -> enum_of_location e.Schema.location) ctx.edge
  | Ast.Edge, Ast.Setting -> Option.map (fun e -> enum_of_setting e.Schema.setting) ctx.edge
  | ( (Ast.Self | Ast.Dest),
      (Ast.Duration | Ast.Contacts | Ast.Last_contact | Ast.Location | Ast.Setting) )
  | Ast.Edge, (Ast.Inf | Ast.T_inf | Ast.Age) ->
    None

(* Bucketized value: what the encrypted protocol actually compares. *)
let bucket_value ctx c =
  Option.map (Analysis.bucketize c.Ast.field) (raw_value ctx c)

(* Scalars are evaluated at the granularity of the coarsest column they
   touch: if any column is an age, constants are scaled to decades,
   matching the 10-long §4.5 sequences. *)
let scalar_has_age s =
  List.exists (fun (c : Ast.colref) -> c.Ast.field = Ast.Age) (Ast.scalar_cols s)

let rec eval_scalar ~div ctx = function
  | Ast.Col c -> bucket_value ctx c
  | Ast.Const v -> Some (v / div)
  | Ast.Plus (s, v) -> Option.map (fun x -> x + (v / div)) (eval_scalar ~div ctx s)
  | Ast.Minus (s, v) -> Option.map (fun x -> x - (v / div)) (eval_scalar ~div ctx s)
  | Ast.Minus_col (s, c) -> (
    match (eval_scalar ~div ctx s, bucket_value ctx c) with
    | Some a, Some b -> Some (a - b)
    | _ -> None)

let location_of_enum = function
  | 0 -> Schema.Household
  | 1 -> Schema.Subway
  | 2 -> Schema.Workplace
  | 3 -> Schema.SocialVenue
  | _ -> Schema.Other

let eval_fn name v =
  match name with
  | "onSubway" -> Some (Schema.on_subway (location_of_enum v))
  | "isHousehold" -> Some (Schema.is_household (location_of_enum v))
  | _ -> None

let eval_atom atom ctx =
  match atom with
  | Ast.True -> Some true
  | Ast.Truthy c -> (
    match c.Ast.field with
    | Ast.Inf -> Option.map (fun v -> v <> 0) (raw_value ctx c)
    | Ast.T_inf -> (
      (* Truthiness of tInf = "was diagnosed". *)
      match c.Ast.group with
      | Ast.Self -> Some (ctx.self.Schema.t_inf <> None)
      | Ast.Dest -> Some (ctx.dest.Schema.t_inf <> None)
      | Ast.Edge -> None)
    | Ast.Age | Ast.Duration | Ast.Contacts | Ast.Last_contact | Ast.Location | Ast.Setting ->
      Option.map (fun v -> v <> 0) (raw_value ctx c))
  | Ast.Cmp (op, a, b) -> (
    let div = if scalar_has_age a || scalar_has_age b then 10 else 1 in
    match (eval_scalar ~div ctx a, eval_scalar ~div ctx b) with
    | Some va, Some vb ->
      Some
        (match op with
        | Ast.Lt -> va < vb
        | Ast.Le -> va <= vb
        | Ast.Gt -> va > vb
        | Ast.Ge -> va >= vb
        | Ast.Eq -> va = vb)
    | _ -> None)
  | Ast.Between (x, lo, hi) -> (
    let div = if scalar_has_age x || scalar_has_age lo || scalar_has_age hi then 10 else 1 in
    match (eval_scalar ~div ctx x, eval_scalar ~div ctx lo, eval_scalar ~div ctx hi) with
    | Some vx, Some vlo, Some vhi -> Some (vx >= vlo && vx <= vhi)
    | _ -> None)
  | Ast.Fn (name, c) -> Option.bind (raw_value ctx c) (eval_fn name)
  | Ast.And _ | Ast.Or _ -> None

let rec eval_pred p ctx =
  match p with
  | Ast.And (a, b) -> eval_pred a ctx && eval_pred b ctx
  | Ast.Or (a, b) -> eval_pred a ctx || eval_pred b ctx
  | (Ast.True | Ast.Truthy _ | Ast.Cmp _ | Ast.Between _ | Ast.Fn _) as atom -> (
    match eval_atom atom ctx with Some v -> v | None -> false)

let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | Ast.True -> []
  | (Ast.Or _ | Ast.Truthy _ | Ast.Cmp _ | Ast.Between _ | Ast.Fn _) as p -> [ p ]

let conjunct_is_self_only p =
  List.for_all (fun (c : Ast.colref) -> c.Ast.group = Ast.Self) (Ast.pred_cols p)

let split_where where =
  let cs = conjuncts where in
  (* Each conjunct may contain ORs, but only within one placement side
     (the §4 language restriction). *)
  let side_of_pred p =
    (* Placement by the columns the (possibly compound) predicate
       touches. *)
    let cols = Ast.pred_cols p in
    let has g = List.exists (fun (c : Ast.colref) -> c.Ast.group = g) cols in
    if has Ast.Self && has Ast.Dest then `Cross
    else if has Ast.Dest then `Dest
    else if cols <> [] then `Origin
    else `Constant
  in
  let check_placeable p =
    let rec disjuncts = function
      | Ast.Or (a, b) -> disjuncts a @ disjuncts b
      | (Ast.True | Ast.And _ | Ast.Truthy _ | Ast.Cmp _ | Ast.Between _ | Ast.Fn _) as q -> [ q ]
    in
    let sides =
      List.filter (fun s -> s <> `Constant) (List.map side_of_pred (disjuncts p))
    in
    let side_rank = function `Cross -> 0 | `Dest -> 1 | `Origin -> 2 | `Constant -> 3 in
    let compare_side a b = Int.compare (side_rank a) (side_rank b) in
    if List.length (List.sort_uniq compare_side sides) > 1 then
      Error "disjunction spans column groups; the protocol cannot place it"
    else Ok ()
  in
  let rec check = function
    | [] -> Ok ()
    | p :: rest -> ( match check_placeable p with Ok () -> check rest | Error e -> Error e)
  in
  match check cs with
  | Error e -> Error e
  | Ok () -> Ok (List.partition conjunct_is_self_only cs)

let row_preds info =
  match split_where info.Analysis.query.Ast.where with
  | Ok (_, rows) -> rows
  | Error e -> failwith e

let origin_preds info =
  match split_where info.Analysis.query.Ast.where with
  | Ok (globals, _) -> globals
  | Error e -> failwith e

let agg_of info =
  match info.Analysis.query.Ast.output with Ast.Histo a -> a | Ast.Gsum { num; _ } -> num

let row_passes info ctx = List.for_all (fun p -> eval_pred p ctx) (row_preds info)

let row_value info ctx =
  if not (row_passes info ctx) then 0
  else begin
    match agg_of info with
    | Ast.Count -> 1
    | Ast.Sum c -> (
      match bucket_value ctx c with Some v -> v | None -> 0)
  end

let origin_group info (self : Schema.vertex_data) =
  match info.Analysis.query.Ast.group_by with
  | Ast.By_col { Ast.group = Ast.Self; field = Ast.Age } -> Schema.age_group self.Schema.age
  | Ast.By_col { Ast.group = Ast.Self; field = Ast.Inf } -> if self.Schema.infected then 1 else 0
  | Ast.By_col
      { Ast.group = Ast.Self;
        field =
          Ast.T_inf | Ast.Duration | Ast.Contacts | Ast.Last_contact | Ast.Location | Ast.Setting
      }
  | Ast.By_col { Ast.group = Ast.Dest | Ast.Edge; _ }
  | Ast.No_group | Ast.By_fn _ -> 0

let row_group info ctx =
  match info.Analysis.query.Ast.group_by with
  | Ast.No_group -> Some 0
  | Ast.By_col ({ Ast.group = Ast.Self; _ } as _c) -> Some (origin_group info ctx.self)
  | Ast.By_col ({ Ast.group = Ast.Edge; _ } as c) -> bucket_value ctx c
  | Ast.By_col { Ast.group = Ast.Dest; _ } -> None
  | Ast.By_fn (name, s) -> (
    match name with
    | "stage" -> (
      let div = if scalar_has_age s then 10 else 1 in
      match eval_scalar ~div ctx s with
      | Some delay -> Some (Schema.stage_of_delay delay)
      | None -> None)
    | "isHousehold" | "onSubway" -> (
      match Ast.scalar_cols s with
      | [ c ] -> (
        match Option.bind (raw_value ctx c) (eval_fn name) with
        | Some b -> Some (if b then 1 else 0)
        | None -> None)
      | _ -> None)
    | _ -> None)

(* Per-group stride layout; see Analysis. *)
let strides info =
  let l = info.Analysis.layout in
  let count_stride = l.Analysis.count_slots in
  let group_stride = l.Analysis.count_slots * l.Analysis.value_slots in
  (group_stride, count_stride)

let is_ratio info =
  match info.Analysis.query.Ast.output with
  | Ast.Gsum { ratio = true; _ } -> true
  | Ast.Gsum { ratio = false; _ } | Ast.Histo _ -> false

let origin_gate info self =
  let origin_ctx = { self; dest = self; edge = None } in
  List.for_all (fun p -> eval_pred p origin_ctx) (origin_preds info)

let accumulation_group info ctx =
  (* Self-grouped and ungrouped queries run one aggregation; the group
     shift is applied by the origin afterwards. *)
  match info.Analysis.group_kind with
  | Analysis.Group_none | Analysis.Group_self -> Some 0
  | Analysis.Group_edge | Analysis.Group_cross _ -> row_group info ctx

let pack_exponents info ~self ~sums ~counts =
  let l = info.Analysis.layout in
  let group_stride, count_stride = strides info in
  match info.Analysis.group_kind with
  | Analysis.Group_none | Analysis.Group_self ->
    let g = origin_group info self in
    let s = min sums.(0) (l.Analysis.value_slots - 1) in
    let c = min counts.(0) (l.Analysis.count_slots - 1) in
    [ (g * group_stride) + (s * count_stride) + c ]
  | Analysis.Group_edge | Analysis.Group_cross _ ->
    List.init l.Analysis.group_count (fun g ->
        let s = min sums.(g) (l.Analysis.value_slots - 1) in
        let c = min counts.(g) (l.Analysis.count_slots - 1) in
        (g * group_stride) + (s * count_stride) + c)

let local_exponents info graph ~origin =
  let self = Cg.vertex graph origin in
  if not (origin_gate info self) then None
  else begin
    let q = info.Analysis.query in
    let parents = Cg.spanning_parents graph origin ~k:q.Ast.hops in
    let members = (origin, 0) :: Cg.k_hop graph origin ~k:q.Ast.hops in
    (* First edge on the BFS path: walk parents up to depth 1. *)
    let first_edge m =
      if m = origin then None
      else begin
        let rec walk v = match Hashtbl.find_opt parents v with
          | Some p when p = origin -> Some v
          | Some p -> walk p
          | None -> None
        in
        match walk m with
        | Some first_hop -> Cg.edge graph origin first_hop
        | None -> None
      end
    in
    let l = info.Analysis.layout in
    let ratio = is_ratio info in
    (* Accumulate sum and count per group. *)
    let sums = Array.make l.Analysis.group_count 0 in
    let counts = Array.make l.Analysis.group_count 0 in
    List.iter
      (fun (m, _dist) ->
        let ctx = { self; dest = Cg.vertex graph m; edge = first_edge m } in
        match accumulation_group info ctx with
        | None -> ()
        | Some g when g < 0 || g >= l.Analysis.group_count -> ()
        | Some g ->
          let b = row_value info ctx in
          sums.(g) <- sums.(g) + b;
          if ratio && row_passes info ctx then counts.(g) <- counts.(g) + 1)
      members;
    Some (pack_exponents info ~self ~sums ~counts)
  end

let global_histogram info graph =
  let bins = Array.make info.Analysis.layout.Analysis.total_bins 0 in
  for origin = 0 to Cg.population graph - 1 do
    match local_exponents info graph ~origin with
    | None -> ()
    | Some exps -> List.iter (fun e -> bins.(e) <- bins.(e) + 1) exps
  done;
  bins

(* --- final processing ------------------------------------------------ *)

let group_labels info =
  let q = info.Analysis.query in
  let n = info.Analysis.layout.Analysis.group_count in
  match q.Ast.group_by with
  | Ast.No_group -> [| "all" |]
  | Ast.By_col { Ast.field = Ast.Age; _ } ->
    Array.init n (fun g -> Printf.sprintf "age %d-%d" (g * 10) ((g * 10) + 9))
  | Ast.By_col { Ast.field = Ast.Setting; _ } -> [| "family"; "social"; "work" |]
  | Ast.By_col { Ast.field = Ast.Location; _ } ->
    [| "household"; "subway"; "workplace"; "social-venue"; "other" |]
  | Ast.By_col { Ast.field = Ast.Inf | Ast.T_inf | Ast.Duration | Ast.Contacts | Ast.Last_contact; _ }
    ->
    Array.init n (fun g -> Printf.sprintf "group %d" g)
  | Ast.By_fn ("stage", _) -> [| "incubation"; "illness" |]
  | Ast.By_fn ("isHousehold", _) -> [| "non-household"; "household" |]
  | Ast.By_fn ("onSubway", _) -> [| "off-subway"; "subway" |]
  | Ast.By_fn _ -> Array.init n (fun g -> Printf.sprintf "group %d" g)

type result = Histogram of (string * float array) array | Sums of (string * float) array

let decode info noisy =
  let l = info.Analysis.layout in
  let group_stride, count_stride = strides info in
  let labels = group_labels info in
  match info.Analysis.query.Ast.output with
  | Ast.Histo _ ->
    Histogram
      (Array.init l.Analysis.group_count (fun g ->
           ( labels.(g),
             Array.init l.Analysis.value_slots (fun s -> noisy.((g * group_stride) + s)) )))
  | Ast.Gsum { ratio; _ } ->
    let lo, hi = match info.Analysis.clip with Some c -> c | None -> (0., infinity) in
    let clipf v = Float.max lo (Float.min hi v) in
    Sums
      (Array.init l.Analysis.group_count (fun g ->
           let acc = ref 0. in
           for s = 0 to l.Analysis.value_slots - 1 do
             for c = 0 to l.Analysis.count_slots - 1 do
               let p = noisy.((g * group_stride) + (s * count_stride) + c) in
               let v =
                 if ratio then if c = 0 then 0. else clipf (float_of_int s /. float_of_int c)
                 else clipf (float_of_int s)
               in
               acc := !acc +. (p *. v)
             done
           done;
           (labels.(g), !acc)))
