type column_group = Self | Dest | Edge

type field = Inf | T_inf | Age | Duration | Contacts | Last_contact | Location | Setting

type colref = { group : column_group; field : field }

type scalar =
  | Col of colref
  | Const of int
  | Plus of scalar * int
  | Minus of scalar * int
  | Minus_col of scalar * colref

type cmp = Lt | Le | Gt | Ge | Eq

type pred =
  | True
  | And of pred * pred
  | Or of pred * pred
  | Truthy of colref
  | Cmp of cmp * scalar * scalar
  | Between of scalar * scalar * scalar
  | Fn of string * colref

type agg = Count | Sum of colref

type output = Histo of agg | Gsum of { num : agg; ratio : bool; clip : (int * int) option }

type group_by = No_group | By_col of colref | By_fn of string * scalar

type t = {
  name : string;
  output : output;
  hops : int;
  where : pred;
  group_by : group_by;
}

let field_of_string = function
  | "inf" -> Some Inf
  | "tInf" -> Some T_inf
  | "age" -> Some Age
  | "duration" -> Some Duration
  | "contacts" -> Some Contacts
  | "last_contact" -> Some Last_contact
  | "location" -> Some Location
  | "setting" -> Some Setting
  | _ -> None

let field_to_string = function
  | Inf -> "inf"
  | T_inf -> "tInf"
  | Age -> "age"
  | Duration -> "duration"
  | Contacts -> "contacts"
  | Last_contact -> "last_contact"
  | Location -> "location"
  | Setting -> "setting"

let group_to_string = function Self -> "self" | Dest -> "dest" | Edge -> "edge"

let field_rank = function
  | Inf -> 0
  | T_inf -> 1
  | Age -> 2
  | Duration -> 3
  | Contacts -> 4
  | Last_contact -> 5
  | Location -> 6
  | Setting -> 7

let compare_field a b = Int.compare (field_rank a) (field_rank b)
let equal_field a b = Int.equal (field_rank a) (field_rank b)

let equal_group a b =
  match (a, b) with
  | Self, Self | Dest, Dest | Edge, Edge -> true
  | (Self | Dest | Edge), _ -> false

let equal_colref a b = equal_group a.group b.group && equal_field a.field b.field

let rec equal_scalar a b =
  match (a, b) with
  | Col a, Col b -> equal_colref a b
  | Const a, Const b -> Int.equal a b
  | Plus (s, v), Plus (s', v') -> equal_scalar s s' && Int.equal v v'
  | Minus (s, v), Minus (s', v') -> equal_scalar s s' && Int.equal v v'
  | Minus_col (s, c), Minus_col (s', c') -> equal_scalar s s' && equal_colref c c'
  | (Col _ | Const _ | Plus _ | Minus _ | Minus_col _), _ -> false

let equal_cmp a b =
  match (a, b) with
  | Lt, Lt | Le, Le | Gt, Gt | Ge, Ge | Eq, Eq -> true
  | (Lt | Le | Gt | Ge | Eq), _ -> false

let rec equal_pred a b =
  match (a, b) with
  | True, True -> true
  | And (p, q), And (p', q') -> equal_pred p p' && equal_pred q q'
  | Or (p, q), Or (p', q') -> equal_pred p p' && equal_pred q q'
  | Truthy c, Truthy c' -> equal_colref c c'
  | Cmp (c, x, y), Cmp (c', x', y') ->
    equal_cmp c c' && equal_scalar x x' && equal_scalar y y'
  | Between (x, lo, hi), Between (x', lo', hi') ->
    equal_scalar x x' && equal_scalar lo lo' && equal_scalar hi hi'
  | Fn (f, c), Fn (f', c') -> String.equal f f' && equal_colref c c'
  | (True | And _ | Or _ | Truthy _ | Cmp _ | Between _ | Fn _), _ -> false

let equal_agg a b =
  match (a, b) with
  | Count, Count -> true
  | Sum c, Sum c' -> equal_colref c c'
  | (Count | Sum _), _ -> false

let equal_output a b =
  match (a, b) with
  | Histo g, Histo g' -> equal_agg g g'
  | Gsum g, Gsum g' ->
    equal_agg g.num g'.num
    && Bool.equal g.ratio g'.ratio
    && Option.equal (fun (lo, hi) (lo', hi') -> Int.equal lo lo' && Int.equal hi hi') g.clip g'.clip
  | (Histo _ | Gsum _), _ -> false

let equal_group_by a b =
  match (a, b) with
  | No_group, No_group -> true
  | By_col c, By_col c' -> equal_colref c c'
  | By_fn (f, s), By_fn (f', s') -> String.equal f f' && equal_scalar s s'
  | (No_group | By_col _ | By_fn _), _ -> false

let equal a b =
  String.equal a.name b.name
  && equal_output a.output b.output
  && Int.equal a.hops b.hops
  && equal_pred a.where b.where
  && equal_group_by a.group_by b.group_by

let colref_valid c =
  match (c.group, c.field) with
  | (Self | Dest), (Inf | T_inf | Age) -> true
  | (Self | Dest), (Duration | Contacts | Last_contact | Location | Setting) -> false
  | Edge, (Duration | Contacts | Last_contact | Location | Setting) -> true
  | Edge, (Inf | T_inf | Age) -> false

let colref_to_string c = group_to_string c.group ^ "." ^ field_to_string c.field

let rec scalar_to_string = function
  | Col c -> colref_to_string c
  | Const v -> string_of_int v
  | Plus (s, v) -> scalar_to_string s ^ "+" ^ string_of_int v
  | Minus (s, v) -> scalar_to_string s ^ "-" ^ string_of_int v
  | Minus_col (s, c) -> scalar_to_string s ^ "-" ^ colref_to_string c

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "="

let rec pred_to_string = function
  | True -> "TRUE"
  | And (a, b) -> pred_to_string a ^ " AND " ^ pred_to_string b
  | Or (a, b) -> "(" ^ pred_to_string a ^ " OR " ^ pred_to_string b ^ ")"
  | Truthy c -> colref_to_string c
  | Cmp (op, a, b) -> "(" ^ scalar_to_string a ^ cmp_to_string op ^ scalar_to_string b ^ ")"
  | Between (x, lo, hi) ->
    "(" ^ scalar_to_string x ^ " IN [" ^ scalar_to_string lo ^ "," ^ scalar_to_string hi ^ "])"
  | Fn (name, c) -> name ^ "(" ^ colref_to_string c ^ ")"

let agg_to_string = function Count -> "COUNT(*)" | Sum c -> "SUM(" ^ colref_to_string c ^ ")"

let output_to_string = function
  | Histo a -> "HISTO(" ^ agg_to_string a ^ ")"
  | Gsum { num; ratio; clip = _ } ->
    let body = agg_to_string num ^ if ratio then "/COUNT(*)" else "" in
    "GSUM(" ^ body ^ ")"

let group_by_to_string = function
  | No_group -> ""
  | By_col c -> " GROUP BY " ^ colref_to_string c
  | By_fn (name, s) -> " GROUP BY " ^ name ^ "(" ^ scalar_to_string s ^ ")"

let to_string q =
  let where =
    match q.where with
    | True -> ""
    | (And _ | Or _ | Truthy _ | Cmp _ | Between _ | Fn _) as p -> " WHERE " ^ pred_to_string p
  in
  let clip =
    match q.output with
    | Gsum { clip = Some (a, b); _ } -> Printf.sprintf " CLIP [%d,%d]" a b
    | Gsum { clip = None; _ } | Histo _ -> ""
  in
  Printf.sprintf "SELECT %s FROM neigh(%d)%s%s%s" (output_to_string q.output) q.hops where
    (group_by_to_string q.group_by) clip

let pp fmt q = Format.pp_print_string fmt (to_string q)

let rec fold_preds f acc = function
  | And (a, b) | Or (a, b) -> fold_preds f (fold_preds f acc a) b
  | (True | Truthy _ | Cmp _ | Between _ | Fn _) as p -> f acc p

let rec scalar_cols = function
  | Col c -> [ c ]
  | Const _ -> []
  | Plus (s, _) | Minus (s, _) -> scalar_cols s
  | Minus_col (s, c) -> c :: scalar_cols s

let pred_cols p =
  fold_preds
    (fun acc atom ->
      match atom with
      | True -> acc
      | Truthy c -> c :: acc
      | Cmp (_, a, b) -> scalar_cols a @ scalar_cols b @ acc
      | Between (x, lo, hi) -> scalar_cols x @ scalar_cols lo @ scalar_cols hi @ acc
      | Fn (_, c) -> c :: acc
      | And _ | Or _ -> acc)
    [] p
