module Schema = Mycelium_graph.Schema
module Params = Mycelium_bgv.Params

type pred_side = Origin_side | Dest_side | Cross of Ast.field | Constant

let side_of_cols cols =
  let has g = List.exists (fun (c : Ast.colref) -> c.Ast.group = g) cols in
  let self = has Ast.Self and dest = has Ast.Dest in
  if self && dest then begin
    (* The sequence is driven by the dest column being compared. *)
    match List.find_opt (fun (c : Ast.colref) -> c.Ast.group = Ast.Dest) cols with
    | Some c -> Cross c.Ast.field
    | None -> assert false
  end
  else if dest then Dest_side
  else if self then Origin_side
  else if cols <> [] then Origin_side (* edge-only: origin holds its edges *)
  else Constant

let classify_atom = function
  | Ast.And _ | Ast.Or _ -> Error "classify_atom: not atomic"
  | Ast.True -> Ok Constant
  | (Ast.Truthy _ | Ast.Cmp _ | Ast.Between _ | Ast.Fn _) as atom ->
    Ok (side_of_cols (Ast.pred_cols atom))

type group_kind = Group_none | Group_self | Group_edge | Group_cross of Ast.field

type layout = { group_count : int; count_slots : int; value_slots : int; total_bins : int }

type info = {
  query : Ast.t;
  degree_bound : int;
  ciphertext_count : int;
  group_kind : group_kind;
  layout : layout;
  influence_bound : int;
  multiplications : int;
  sensitivity : float;
  clip : (float * float) option;
}

let field_slots = function
  | Ast.Inf -> 2
  | Ast.T_inf -> Schema.t_inf_days
  | Ast.Age -> Schema.age_groups
  | Ast.Duration -> 13 (* whole hours, 0..12 *)
  | Ast.Contacts -> 21 (* capped at 20 *)
  | Ast.Last_contact -> Schema.t_inf_days
  | Ast.Location -> 5
  | Ast.Setting -> 3

let bucketize field raw =
  let clamp lo hi v = max lo (min hi v) in
  match field with
  | Ast.Inf -> clamp 0 1 raw
  | Ast.T_inf -> clamp 0 (Schema.t_inf_days - 1) raw
  | Ast.Age -> Schema.age_group raw
  | Ast.Duration -> clamp 0 12 (raw / 60)
  | Ast.Contacts -> clamp 0 20 raw
  | Ast.Last_contact -> clamp 0 (Schema.t_inf_days - 1) raw
  | Ast.Location -> clamp 0 4 raw
  | Ast.Setting -> clamp 0 2 raw

let group_info (q : Ast.t) =
  match q.Ast.group_by with
  | Ast.No_group -> Ok (Group_none, 1)
  | Ast.By_col c -> (
    match c.Ast.group with
    | Ast.Self -> Ok (Group_self, field_slots c.Ast.field)
    | Ast.Edge -> Ok (Group_edge, field_slots c.Ast.field)
    | Ast.Dest -> Error "GROUP BY dest columns is not supported (would leak neighbor data)")
  | Ast.By_fn (name, s) -> (
    let cols = Ast.scalar_cols s in
    let side = side_of_cols cols in
    let count =
      match name with
      | "stage" -> Some Schema.stages
      | "isHousehold" | "onSubway" -> Some 2
      | _ -> None
    in
    match count with
    | None -> Error (Printf.sprintf "unknown GROUP BY function %s" name)
    | Some count -> (
      match side with
      | Cross f -> Ok (Group_cross f, count)
      | Dest_side -> Error "GROUP BY over dest-only expressions is not supported"
      | Origin_side | Constant ->
        (* edge/self expressions: per-edge grouping when edge columns
           are involved, origin grouping otherwise. *)
        if List.exists (fun (c : Ast.colref) -> c.Ast.group = Ast.Edge) cols then
          Ok (Group_edge, count)
        else Ok (Group_self, count)))

(* 1 + d + d(d-1) + ... : the ball size under degree bound d, also the
   number of origins one device can influence. *)
let ball_size ~degree_bound ~hops =
  let acc = ref 1 and layer = ref degree_bound in
  for i = 1 to hops do
    acc := !acc + !layer;
    if i < hops then layer := !layer * (degree_bound - 1)
  done;
  !acc

let pow_int b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let analyze ?(degree_bound = 10) (q : Ast.t) =
  let ( let* ) = Result.bind in
  (* Validate all columns. *)
  let bad_col =
    List.find_opt (fun c -> not (Ast.colref_valid c)) (Ast.pred_cols q.Ast.where)
  in
  let* () =
    match bad_col with
    | Some c ->
      Error
        (Printf.sprintf "invalid column %s.%s" (Ast.group_to_string c.Ast.group)
           (Ast.field_to_string c.Ast.field))
    | None -> Ok ()
  in
  let* group_kind, group_count = group_info q in
  (* Ciphertext count: product of sequence lengths over distinct cross
     columns (predicates and group function). *)
  let cross_fields =
    let from_preds =
      Ast.fold_preds
        (fun acc atom ->
          match classify_atom atom with
          | Ok (Cross f) -> f :: acc
          | Ok (Origin_side | Dest_side | Constant) | Error _ -> acc)
        [] q.Ast.where
    in
    let from_group =
      match group_kind with
      | Group_cross f -> [ f ]
      | Group_none | Group_self | Group_edge -> []
    in
    List.sort_uniq Ast.compare_field (from_preds @ from_group)
  in
  let ciphertext_count =
    List.fold_left (fun acc f -> acc * field_slots f) 1 cross_fields
  in
  (* Value slots: range of the local aggregation result. The neigh(k)
     table has up to ball_size rows (neighborhood plus the origin's own
     row), each contributing at most the per-row maximum. *)
  let mults = pow_int degree_bound q.Ast.hops in
  let contributions = ball_size ~degree_bound ~hops:q.Ast.hops in
  let agg = match q.Ast.output with Ast.Histo a -> a | Ast.Gsum { num; _ } -> num in
  let* per_contribution_max =
    match agg with
    | Ast.Count -> Ok 1
    | Ast.Sum c ->
      if not (Ast.colref_valid c) then Error "invalid aggregation column"
      else Ok (field_slots c.Ast.field - 1)
  in
  let value_slots = (per_contribution_max * contributions) + 1 in
  let is_ratio =
    match q.Ast.output with
    | Ast.Gsum { ratio; _ } -> ratio
    | Ast.Histo _ -> false
  in
  let count_slots = if is_ratio then contributions + 1 else 1 in
  let layout =
    {
      group_count;
      count_slots;
      value_slots;
      total_bins = group_count * count_slots * value_slots;
    }
  in
  let influence_bound = ball_size ~degree_bound ~hops:q.Ast.hops in
  let* clip =
    match q.Ast.output with
    | Ast.Histo _ -> Ok None
    | Ast.Gsum { ratio = true; clip; _ } ->
      (* Ratios live in [0,1]; an explicit CLIP overrides. *)
      Ok (Some (match clip with Some (a, b) -> (float_of_int a, float_of_int b) | None -> (0., 1.)))
    | Ast.Gsum { ratio = false; clip = Some (a, b); _ } -> Ok (Some (float_of_int a, float_of_int b))
    | Ast.Gsum { ratio = false; clip = None; _ } ->
      Ok (Some (0., float_of_int (value_slots - 1)))
  in
  let sensitivity =
    match clip with
    | None -> Mycelium_dp.Dp.histo_sensitivity ~neighborhood_bound:influence_bound
    | Some (lo, hi) ->
      Mycelium_dp.Dp.gsum_sensitivity ~clip_lo:lo ~clip_hi:hi ~neighborhood_bound:influence_bound
  in
  Ok
    {
      query = q;
      degree_bound;
      ciphertext_count;
      group_kind;
      layout;
      influence_bound;
      multiplications = mults;
      sensitivity;
      clip;
    }

let analyze_exn ?degree_bound q =
  match analyze ?degree_bound q with Ok i -> i | Error e -> failwith ("Analysis: " ^ e)

let log2f v = log v /. log 2.

let max_multiplications (p : Params.t) =
  (* Fresh noise ~ t * N * eta bits; each multiplication of an
     accumulated ciphertext by a fresh one adds ~ (t_bits + n_bits/2 +
     2) bits in the average case (error coefficients concentrate around
     sqrt(N) * |e1| * |e2|). Conservative safety margin of 10 bits. *)
  let t_bits = log2f (float_of_int p.Params.plain_modulus) in
  let n_bits = log2f (float_of_int p.Params.degree) in
  let eta_bits = log2f (float_of_int p.Params.error_eta) in
  let fresh = t_bits +. n_bits +. eta_bits +. 2. in
  let per_mult = t_bits +. (n_bits /. 2.) +. 2. in
  let usable = float_of_int (Params.modulus_bits p) -. fresh -. 10. in
  max 0 (int_of_float (usable /. per_mult))

let feasible info (p : Params.t) =
  let budget = max_multiplications p in
  if info.multiplications > budget then
    Error
      (Printf.sprintf "needs %d homomorphic multiplications, parameters support ~%d"
         info.multiplications budget)
  else if info.layout.total_bins > p.Params.degree then
    Error
      (Printf.sprintf "needs %d bins, ring degree is %d" info.layout.total_bins p.Params.degree)
  else Ok ()
