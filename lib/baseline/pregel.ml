module Cg = Mycelium_graph.Contact_graph

type ('state, 'msg) vertex_ctx = {
  vertex : int;
  superstep : int;
  state : 'state;
  messages : 'msg list;
  send : int -> 'msg -> unit;
  send_all_neighbors : 'msg -> unit;
  vote_halt : unit -> unit;
}

type ('state, 'msg) program = ('state, 'msg) vertex_ctx -> 'state

let run graph ~init ~program ~max_supersteps =
  let n = Cg.population graph in
  let states = Array.init n init in
  let active = Array.make n true in
  let inbox = Array.make n [] in
  let outbox = Array.make n [] in
  let superstep = ref 0 in
  let keep_going = ref true in
  while !keep_going && !superstep < max_supersteps do
    let any_activity = ref false in
    for v = 0 to n - 1 do
      if active.(v) || inbox.(v) <> [] then begin
        any_activity := true;
        active.(v) <- true;
        let halted = ref false in
        let neighbor_ids = List.map fst (Cg.neighbors graph v) in
        let send u m =
          if not (List.exists (Int.equal u) neighbor_ids) then
            invalid_arg "Pregel: send to non-neighbor";
          outbox.(u) <- m :: outbox.(u)
        in
        let ctx =
          {
            vertex = v;
            superstep = !superstep;
            state = states.(v);
            messages = List.rev inbox.(v);
            send;
            send_all_neighbors = (fun m -> List.iter (fun u -> outbox.(u) <- m :: outbox.(u)) neighbor_ids);
            vote_halt = (fun () -> halted := true);
          }
        in
        states.(v) <- program ctx;
        if !halted then active.(v) <- false
      end
    done;
    for v = 0 to n - 1 do
      inbox.(v) <- outbox.(v);
      outbox.(v) <- []
    done;
    if !any_activity then incr superstep else keep_going := false
  done;
  (states, !superstep)
