module Cg = Mycelium_graph.Contact_graph
module Schema = Mycelium_graph.Schema
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Ast = Mycelium_query.Ast

let histogram info graph = Semantics.global_histogram info graph

let run info graph =
  Semantics.decode info (Array.map float_of_int (histogram info graph))

(* Flooded evaluation: the §4.4 schedule made explicit. Rounds 1..k
   flood (origin id, origin data, first edge) outward, each vertex
   remembering its upstream neighbor; rounds k+1..2k fold the per-group
   (sum, count) partials back up the BFS tree; the origin packs the
   result. This mirrors exactly what the encrypted engine does, with
   plaintext integers in place of ciphertexts. *)
let run_flooded info graph =
  let k = info.Analysis.query.Ast.hops in
  let groups = info.Analysis.layout.Analysis.group_count in
  let ratio = Semantics.is_ratio info in
  let bins = Array.make info.Analysis.layout.Analysis.total_bins 0 in
  let n = Cg.population graph in
  (* meta.(v): origin -> (distance, first_edge, origin_data). *)
  let meta = Array.init n (fun _ -> Hashtbl.create 8) in
  let upstream = Array.init n (fun _ -> Hashtbl.create 8) in
  let frontier = Array.make n [] in
  let origins =
    List.filter (fun o -> Semantics.origin_gate info (Cg.vertex graph o)) (List.init n Fun.id)
  in
  List.iter
    (fun o ->
      Hashtbl.replace meta.(o) o (0, None, Cg.vertex graph o);
      frontier.(o) <- [ o ])
    origins;
  (* Phase 1: k flooding rounds. *)
  for dist = 1 to k do
    let next = Array.make n [] in
    for v = 0 to n - 1 do
      List.iter
        (fun o ->
          let _, first_edge, odata = Hashtbl.find meta.(v) o in
          List.iter
            (fun (u, _) ->
              if not (Hashtbl.mem meta.(u) o) then begin
                (* The first receiver records the edge it shares with
                   the origin; everyone further copies it along. *)
                let fe =
                  match first_edge with Some e -> Some e | None -> Cg.edge graph u o
                in
                Hashtbl.replace meta.(u) o (dist, fe, odata);
                Hashtbl.replace upstream.(u) o v;
                next.(u) <- o :: next.(u)
              end)
            (Cg.neighbors graph v))
        frontier.(v)
    done;
    Array.blit next 0 frontier 0 n
  done;
  (* Every reached vertex evaluates its own row for every origin. *)
  let partials = Array.init n (fun _ -> Hashtbl.create 8) in
  for v = 0 to n - 1 do
    (* lint: allow determinism — per-origin rows write disjoint keys; int
       sums commute, so iteration order cannot affect the result *)
    Hashtbl.iter
      (fun o (_, first_edge, odata) ->
        let sums = Array.make groups 0 and counts = Array.make groups 0 in
        let edge = if v = o then None else first_edge in
        let ctx = { Semantics.self = odata; dest = Cg.vertex graph v; edge } in
        (match Semantics.accumulation_group info ctx with
        | Some g when g >= 0 && g < groups ->
          sums.(g) <- sums.(g) + Semantics.row_value info ctx;
          if ratio && Semantics.row_passes info ctx then counts.(g) <- counts.(g) + 1
        | Some _ | None -> ());
        Hashtbl.replace partials.(v) o (sums, counts))
      meta.(v)
  done;
  (* Phase 2: k aggregation rounds, deepest level first. *)
  for dist = k downto 1 do
    for v = 0 to n - 1 do
      (* lint: allow determinism — each origin accumulates into its own
         parent entry; integer addition commutes across iteration order *)
      Hashtbl.iter
        (fun o (d, _, _) ->
          if d = dist then
            match Hashtbl.find_opt upstream.(v) o with
            | Some parent ->
              let my_sums, my_counts = Hashtbl.find partials.(v) o in
              let p_sums, p_counts = Hashtbl.find partials.(parent) o in
              Array.iteri (fun g s -> p_sums.(g) <- p_sums.(g) + s) my_sums;
              Array.iteri (fun g c -> p_counts.(g) <- p_counts.(g) + c) my_counts
            | None -> ())
        meta.(v)
    done
  done;
  (* Final processing at each origin. *)
  List.iter
    (fun o ->
      let sums, counts = Hashtbl.find partials.(o) o in
      List.iter
        (fun e -> bins.(e) <- bins.(e) + 1)
        (Semantics.pack_exponents info ~self:(Cg.vertex graph o) ~sums ~counts))
    origins;
  (bins, 2 * k)

let time_plaintext_query info graph =
  (* lint: allow determinism — wall-clock measurement is this function's
     purpose; the timing never feeds back into query results *)
  let t0 = Unix.gettimeofday () in
  let (_ : Semantics.result) = run info graph in
  (* lint: allow determinism — end of the measured interval *)
  Unix.gettimeofday () -. t0
