(** The serving layer's admission accountant: one thread-safe
    {!Mycelium_dp.Dp.budget} per analyst, created lazily at a uniform
    [per_user_total]. Admission control charges here *before* any
    crypto work is spent; a rejected charge deducts nothing
    (check-and-deduct is atomic inside the budget), so concurrent
    submitters can never jointly push a user past their total. *)

(* lint: allow interface — the accountant owns a mutex and a budget
   table; handles are compared by identity only *)
type t

val create :
  ?accounting:Mycelium_dp.Dp.accounting -> per_user_total:float -> unit -> t

val charge : t -> user:string -> float -> (unit, [ `Exhausted of float ]) result
(** Atomically charge [eps] against [user]'s budget (created on first
    sight). [Error (`Exhausted remaining)] charges nothing. *)

val spent : t -> user:string -> float
val remaining : t -> user:string -> float
val per_user_total : t -> float

val users : t -> string list
(** Every user seen so far, sorted. *)
