module Rng = Mycelium_util.Rng
module Dp = Mycelium_dp.Dp
module Params = Mycelium_bgv.Params
module Analysis = Mycelium_query.Analysis
module Ast = Mycelium_query.Ast
module Parser = Mycelium_query.Parser
module Runtime = Mycelium_core.Runtime
module Obs = Mycelium_obs.Obs

type config = {
  batch_size : int;
  deadline_s : float;
  per_user_budget : float;
  accounting : Dp.accounting;
  cache_capacity : int;
  allow_unbudgeted : bool;
  seed : int64;
}

let default_config =
  {
    batch_size = 8;
    deadline_s = 1.0;
    per_user_budget = 10.;
    accounting = Dp.Basic;
    cache_capacity = 64;
    allow_unbudgeted = false;
    seed = 1L;
  }

type request = { user : string; epsilon : float; sql : string; name : string option }

type rejection =
  | Parse_rejected of string
  | Invalid of Runtime.query_error
  | Unbudgeted
  | Budget_rejected of float

type admission = Queued of int | Rejected of rejection

type response = {
  seq : int;
  user : string;
  query_name : string;
  cache_hit : bool;
  outcome : (Runtime.query_result, Runtime.query_error) result;
}

type pending = {
  pd_seq : int;
  pd_user : string;
  pd_epsilon : float;
  pd_query : Ast.t;
  pd_info : Analysis.info;
  pd_key : string;
  pd_arrival : float;
}

type t = {
  cfg : config;
  runtime : Runtime.t;
  acct : Accountant.t;
  cache : Agg_cache.t;
  ring_degree : int;
  mutable pending : pending list;  (* newest first *)
  mutable next_seq : int;
  c_admitted : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  c_batches : Obs.Metrics.counter;
  c_members : Obs.Metrics.counter;
}

let create ?(config = default_config) runtime =
  if config.batch_size < 1 then invalid_arg "Serve.create: batch_size must be >= 1";
  {
    cfg = config;
    runtime;
    acct =
      Accountant.create ~accounting:config.accounting
        ~per_user_total:config.per_user_budget ();
    cache = Agg_cache.create ~capacity:config.cache_capacity ~graph:(Runtime.graph runtime);
    ring_degree = (Runtime.config runtime).Runtime.params.Params.degree;
    pending = [];
    next_seq = 0;
    c_admitted = Obs.Metrics.counter Obs.Names.serve_admitted;
    c_rejected = Obs.Metrics.counter Obs.Names.serve_rejected;
    c_batches = Obs.Metrics.counter Obs.Names.serve_batches;
    c_members = Obs.Metrics.counter Obs.Names.serve_batch_members;
  }

let accountant t = t.acct
let cache t = t.cache
let pending_count t = List.length t.pending

(* Execute one chunk of pending members as a single Runtime batch:
   cache lookups first (a hit skips gather and aggregation inside the
   batch), then one shared round-trip + decryption session, then the
   fresh aggregates are written back to the cache.

   Duplicate shapes inside the chunk are deferred to a second pass:
   the first occurrence of each key computes and writes back, so by
   the time its duplicates look up they decrypt the cached aggregate
   instead of recomputing the gather + aggregation.  The split is
   release-byte-safe — a member's noise stream is a pure function of
   its own admission seq, its fault coordinate of its key, never of
   the batch composition (the batched ≡ sequential suite pins this). *)
let run_chunk t chunk =
  Obs.Metrics.incr t.c_batches;
  Obs.Metrics.add t.c_members (List.length chunk);
  let exec members =
    let lookups = List.map (fun pd -> (pd, Agg_cache.find t.cache pd.pd_key)) members in
    let items =
      List.map
        (fun (pd, cached) ->
          {
            Runtime.bi_query = pd.pd_query;
            bi_epsilon = pd.pd_epsilon;
            (* The member's private noise stream: a pure function of the
               serving seed and the member's admission sequence number —
               never of the batch composition. *)
            bi_noise_seed = Rng.mix64 t.cfg.seed (Int64.of_int pd.pd_seq);
            bi_fault_round = Agg_cache.fault_round_of_key pd.pd_key;
            bi_cached = cached;
          })
        lookups
    in
    let results = Runtime.run_batch t.runtime items in
    List.map2
      (fun (pd, cached) res ->
        let cache_hit = Option.is_some cached in
        let outcome =
          match res with
          | Ok (r, prepared) ->
            if not cache_hit then Agg_cache.put t.cache pd.pd_key prepared;
            Ok r
          | Error e -> Error e
        in
        { seq = pd.pd_seq; user = pd.pd_user; query_name = pd.pd_query.Ast.name;
          cache_hit; outcome })
      lookups results
  in
  let claimed = Hashtbl.create 8 in
  let firsts, dups =
    List.fold_left
      (fun (firsts, dups) pd ->
        if Hashtbl.mem claimed pd.pd_key then (firsts, pd :: dups)
        else begin
          Hashtbl.add claimed pd.pd_key ();
          (pd :: firsts, dups)
        end)
      ([], []) chunk
  in
  match dups with
  | [] -> exec chunk
  | _ ->
    (* sequence the passes explicitly: [@] evaluates its operands
       right to left, which would run the duplicates before the
       write-backs they are meant to hit *)
    let first_responses = exec (List.rev firsts) in
    let dup_responses = exec (List.rev dups) in
    (* restore admission order: chunk members carry ascending seqs *)
    List.sort (fun a b -> Int.compare a.seq b.seq)
      (first_responses @ dup_responses)

(* Split the queue into batches: at most [batch_size] members, and
   never more plaintext windows than the ring can hold in one
   decryption session (each member needs total_bins coefficients of
   the degree-N plaintext). *)
let drain t =
  let queue = List.rev t.pending in
  t.pending <- [];
  let rec chunks acc cur cur_n cur_bins = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | pd :: rest ->
      let bins = pd.pd_info.Analysis.layout.Analysis.total_bins in
      if cur <> [] && (cur_n >= t.cfg.batch_size || cur_bins + bins > t.ring_degree)
      then chunks (List.rev cur :: acc) [ pd ] 1 bins rest
      else chunks acc (pd :: cur) (cur_n + 1) (cur_bins + bins) rest
  in
  List.concat_map (run_chunk t) (chunks [] [] 0 0 queue)

let oldest_arrival t =
  match List.rev t.pending with [] -> None | pd :: _ -> Some pd.pd_arrival

(* Admission: parse, static validation, the unbudgeted-query gate and
   the per-user budget charge — all before any crypto work.  A
   deadline flush happens before the new arrival is considered, so the
   batch a query joins depends only on the arrival sequence. *)
let submit t ~arrival (req : request) =
  let flushed =
    match oldest_arrival t with
    | Some t0 when arrival -. t0 >= t.cfg.deadline_s -> drain t
    | Some _ | None -> []
  in
  let queue query info =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.pending <-
      {
        pd_seq = seq;
        pd_user = req.user;
        pd_epsilon = req.epsilon;
        pd_query = query;
        pd_info = info;
        pd_key = Agg_cache.key t.cache query ~info;
        pd_arrival = arrival;
      }
      :: t.pending;
    Queued seq
  in
  let admit () =
    match Parser.parse ?name:req.name req.sql with
    | Error e ->
      Rejected (Parse_rejected (Printf.sprintf "at %d: %s" e.Parser.position e.Parser.message))
    | Ok query -> (
      match Runtime.validate_query t.runtime query with
      | Error e -> Rejected (Invalid e)
      | Ok info ->
        if req.epsilon = Float.infinity && not t.cfg.allow_unbudgeted then
          (* The single-query path treats epsilon = infinity as a
             debugging mode; a serving layer must refuse to release
             unbudgeted results unless explicitly overridden. *)
          Rejected Unbudgeted
        else if req.epsilon <> Float.infinity then begin
          match Accountant.charge t.acct ~user:req.user req.epsilon with
          | Ok () -> queue query info
          | Error (`Exhausted r) -> Rejected (Budget_rejected r)
        end
        else queue query info)
  in
  let admission = admit () in
  (match admission with
  | Queued _ -> Obs.Metrics.incr t.c_admitted
  | Rejected _ -> Obs.Metrics.incr t.c_rejected);
  let flushed =
    if List.length t.pending >= t.cfg.batch_size then flushed @ drain t else flushed
  in
  (admission, flushed)

let rejection_to_string = function
  | Parse_rejected m -> Printf.sprintf "parse: %s" m
  | Invalid (Runtime.Parse_error m) -> Printf.sprintf "parse: %s" m
  | Invalid (Runtime.Analysis_error m) -> Printf.sprintf "analysis: %s" m
  | Invalid (Runtime.Infeasible m) -> Printf.sprintf "infeasible: %s" m
  | Invalid (Runtime.Budget_exhausted r) ->
    Printf.sprintf "budget exhausted (%.3f remaining)" r
  | Invalid (Runtime.Pipeline_error m) -> Printf.sprintf "pipeline: %s" m
  | Unbudgeted -> "unbudgeted query (epsilon = infinity) refused without --no-budget"
  | Budget_rejected r -> Printf.sprintf "user budget exhausted (%.3f remaining)" r
