(** The multi-query serving layer (DESIGN.md §14): a budget-gated
    scheduler that accumulates admitted queries into batches sharing
    one mixnet round-trip and one committee threshold-decryption
    session, backed by the encrypted-aggregate cache ({!Agg_cache})
    and the per-user admission accountant ({!Accountant}).

    A batch flushes when it reaches [batch_size] members or when the
    oldest pending member has waited [deadline_s] (checked against the
    caller-supplied arrival clock, so scheduling is deterministic and
    replayable from a workload file). Batching is invisible in the
    released bytes: every member's DP noise comes from its own seed
    stream ([seed] mixed with the member's admission sequence number)
    and its injected transit faults from its own query-shape-derived
    fault coordinate, so a query releases byte-identical results at
    batch size 1 or 8, cache hit or miss.

    Duplicate query shapes arriving in the same batch also hit the
    cache: a chunk runs in two passes — first occurrences compute and
    write back, duplicates then decrypt the cached aggregate — and the
    responses are re-merged in admission order. *)

type config = {
  batch_size : int;  (** flush when this many members are pending *)
  deadline_s : float;
      (** flush when the oldest pending member has waited this long on
          the arrival clock *)
  per_user_budget : float;  (** each analyst's total epsilon *)
  accounting : Mycelium_dp.Dp.accounting;
  cache_capacity : int;  (** 0 disables the encrypted-aggregate cache *)
  allow_unbudgeted : bool;
      (** admit [epsilon = infinity] queries (the single-query debug
          semantics); off by default — a serving layer refuses to
          release unbudgeted results *)
  seed : int64;  (** root of the per-member DP-noise seed streams *)
}

val default_config : config
(** batch 8, deadline 1.0, per-user budget 10 under Basic composition,
    cache capacity 64, unbudgeted queries refused, seed 1. *)

type request = {
  user : string;
  epsilon : float;
  sql : string;
  name : string option;
      (** the analyst's query name (e.g. the corpus id), threaded to
          the parser so audit-ledger rows and responses carry it
          instead of the parser's ["query"] placeholder; [None] keeps
          the placeholder.  Names never enter the cache key — equal
          shapes share an entry regardless. *)
}

type rejection =
  | Parse_rejected of string
  | Invalid of Mycelium_core.Runtime.query_error
  | Unbudgeted
      (** [epsilon = infinity] without the [allow_unbudgeted] override *)
  | Budget_rejected of float
      (** the user's remaining budget; the rejected charge deducted
          nothing *)

type admission = Queued of int  (** the member's sequence number *) | Rejected of rejection

type response = {
  seq : int;
  user : string;
  query_name : string;
  cache_hit : bool;
  outcome :
    (Mycelium_core.Runtime.query_result, Mycelium_core.Runtime.query_error) result;
}

(* lint: allow interface — the scheduler owns a runtime handle, the
   accountant and the cache; handles are compared by identity only *)
type t

val create : ?config:config -> Mycelium_core.Runtime.t -> t

val submit : t -> arrival:float -> request -> admission * response list
(** Admit one request at time [arrival] (monotone, caller-supplied):
    deadline-flush the queue if the oldest member timed out, then
    parse, validate, gate unbudgeted queries and charge the user's
    budget — all before any crypto work. The returned responses are
    whatever batches flushed during this call (deadline or size
    trigger), possibly including the new member. *)

val drain : t -> response list
(** Flush everything pending (end of workload / shutdown). Members run
    in admission order, chunked by [batch_size] and by the ring
    capacity of one decryption session. *)

val pending_count : t -> int
val accountant : t -> Accountant.t
val cache : t -> Agg_cache.t
val rejection_to_string : rejection -> string
