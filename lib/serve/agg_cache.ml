module Cg = Mycelium_graph.Contact_graph
module Analysis = Mycelium_query.Analysis
module Ast = Mycelium_query.Ast
module Runtime = Mycelium_core.Runtime
module Obs = Mycelium_obs.Obs

type entry = {
  e_prepared : Runtime.prepared;
  mutable e_last_use : int;  (* monotone tick; larger = more recent *)
}

type t = {
  capacity : int;
  graph_sig : string;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable evictions : int;
  mutable hits : int;
  mutable misses : int;
  c_hits : Obs.Metrics.counter;
  c_misses : Obs.Metrics.counter;
  c_evictions : Obs.Metrics.counter;
}

(* The neighborhood signature: a digest over the adjacency structure
   and every vertex's neighbor list, in vertex order.  Two runtimes
   whose graphs differ anywhere produce different keys, so a cached
   aggregate can never be served against the wrong population. *)
let graph_signature g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "n=%d;e=%d;" (Cg.population g) (Cg.edge_count g));
  for v = 0 to Cg.population g - 1 do
    Buffer.add_string buf (string_of_int v);
    Buffer.add_char buf ':';
    List.iter
      (fun (u, _) ->
        Buffer.add_string buf (string_of_int u);
        Buffer.add_char buf ',')
      (Cg.neighbors g v);
    Buffer.add_char buf ';'
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let create ~capacity ~graph =
  if capacity < 0 then invalid_arg "Agg_cache.create: negative capacity";
  {
    capacity;
    graph_sig = graph_signature graph;
    table = Hashtbl.create (max 16 capacity);
    clock = 0;
    evictions = 0;
    hits = 0;
    misses = 0;
    c_hits = Obs.Metrics.counter Obs.Names.serve_cache_hits;
    c_misses = Obs.Metrics.counter Obs.Names.serve_cache_misses;
    c_evictions = Obs.Metrics.counter Obs.Names.serve_cache_evictions;
  }

(* The cache key: (neighborhood signature, clip + degree bounds, query
   shape).  The shape is the canonical printed form of the query with
   the analyst-chosen name blanked, so two differently-named queries
   with the same meaning share an entry. *)
let key t (query : Ast.t) ~(info : Analysis.info) =
  let clip =
    match info.Analysis.clip with
    | Some (lo, hi) -> Printf.sprintf "%h..%h" lo hi
    | None -> "-"
  in
  Printf.sprintf "g=%s|d=%d|clip=%s|q=%s" t.graph_sig info.Analysis.degree_bound clip
    (Ast.to_string { query with Ast.name = "" })

(* A member's logical transit-fault coordinate (Runtime.bi_fault_round)
   is derived from the key digest: a pure function of the query shape,
   so a recomputation after a cache miss — or the same query in any
   batch, at any position — replays the identical drop decisions and
   reproduces the cached aggregate bit for bit. *)
let fault_round_of_key k =
  let d = Digest.string k in
  let b i = Char.code d.[i] in
  (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)) land 0x3FFFFFFF

let find t k =
  if t.capacity = 0 then begin
    t.misses <- t.misses + 1;
    Obs.Metrics.incr t.c_misses;
    None
  end
  else
    match Hashtbl.find_opt t.table k with
    | Some e ->
      t.clock <- t.clock + 1;
      e.e_last_use <- t.clock;
      t.hits <- t.hits + 1;
      Obs.Metrics.incr t.c_hits;
      Some e.e_prepared
    | None ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr t.c_misses;
      None

let put t k prepared =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table k with
    | Some _ -> ()
    | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        (* Deterministic eviction: the least-recently-used entry; the
           use clock is a strictly monotone tick, so there are never
           ties and the victim is a pure function of the operation
           sequence. *)
        let victim =
          (* lint: allow determinism — use ticks are strictly monotone,
             so the minimum is unique and fold order cannot matter *)
          Hashtbl.fold
            (fun vk e acc ->
              match acc with
              | Some (_, best) when best <= e.e_last_use -> acc
              | Some _ | None -> Some (vk, e.e_last_use))
            t.table None
        in
        match victim with
        | Some (vk, _) ->
          Hashtbl.remove t.table vk;
          t.evictions <- t.evictions + 1;
          Obs.Metrics.incr t.c_evictions
        | None -> ()
      end);
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table k { e_prepared = prepared; e_last_use = t.clock }
  end

let length t = Hashtbl.length t.table
let evictions t = t.evictions
let hits t = t.hits
let misses t = t.misses
