module Dp = Mycelium_dp.Dp

type t = {
  accounting : Dp.accounting;
  per_user_total : float;
  lock : Mutex.t;  (* guards the table only; each budget has its own *)
  users : (string, Dp.budget) Hashtbl.t;
}

let create ?(accounting = Dp.Basic) ~per_user_total () =
  if per_user_total <= 0. then
    invalid_arg "Accountant.create: per_user_total must be positive";
  {
    accounting;
    per_user_total;
    lock = Mutex.create ();
    users = Hashtbl.create 16;
  }

(* Lookup-or-create under the table lock.  The returned budget is
   itself thread-safe (lib/dp), so charges proceed without holding the
   table lock: two users never contend, and two chargers of one user
   serialize inside their shared budget. *)
let budget_for t user =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  match Hashtbl.find_opt t.users user with
  | Some b -> b
  | None ->
    let b = Dp.budget_create ~accounting:t.accounting ~total:t.per_user_total () in
    Hashtbl.add t.users user b;
    b

let charge t ~user eps = Dp.budget_charge (budget_for t user) eps
let spent t ~user = Dp.budget_spent (budget_for t user)
let remaining t ~user = Dp.budget_remaining (budget_for t user)
let per_user_total t = t.per_user_total

let users t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  (* lint: allow determinism — the fold order is erased by the sort *)
  List.sort String.compare (Hashtbl.fold (fun u _ acc -> u :: acc) t.users [])
