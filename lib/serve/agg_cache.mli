(** The serving layer's encrypted-aggregate cache (DESIGN.md §14):
    maps (neighborhood signature, clip/degree bounds, query shape) to a
    {!Mycelium_core.Runtime.prepared} — the relinearized aggregate a
    repeated ego-centric query can decrypt directly, skipping gather
    and aggregation entirely. Cached ciphertexts stay decryptable
    across committee rotations because VSR redistributes shares of the
    same key.

    Eviction is deterministic LRU: the use clock is a strictly monotone
    tick, so the victim is a pure function of the operation sequence.
    Hits, misses and evictions are counted in [Obs] under
    [serve.cache_hits] / [serve.cache_misses] / [serve.cache_evictions]. *)

(* lint: allow interface — the cache owns mutable recency state and
   Obs counters; handles are compared by identity only *)
type t

val create : capacity:int -> graph:Mycelium_graph.Contact_graph.t -> t
(** [capacity = 0] disables the cache: every {!find} misses, {!put} is
    a no-op. The graph is digested once into the neighborhood
    signature every key embeds. *)

val key :
  t -> Mycelium_query.Ast.t -> info:Mycelium_query.Analysis.info -> string
(** The composite cache key; the query's analyst-chosen name is
    blanked so equal-shaped queries share an entry. *)

val fault_round_of_key : string -> int
(** The member's logical transit-fault coordinate
    ({!Mycelium_core.Runtime.batch_item.bi_fault_round}), derived from
    the key digest — a pure function of the query shape, so a
    recomputation after a miss replays the identical drop decisions
    and reproduces the cached aggregate bit for bit. *)

val find : t -> string -> Mycelium_core.Runtime.prepared option
(** Counts a hit or a miss, and refreshes recency on hit. *)

val put : t -> string -> Mycelium_core.Runtime.prepared -> unit

val length : t -> int
val evictions : t -> int

val hits : t -> int
(** Per-instance lookup counters (the Obs [serve.cache_*] counters are
    process-global); used by the scheduler's hit-accounting tests. *)

val misses : t -> int
