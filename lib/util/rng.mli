(** Deterministic pseudo-random number generation.

    Every randomized component of the library threads an explicit [Rng.t]
    so that simulations, tests and benchmarks are reproducible from a
    seed. The generator is SplitMix64 (Steele et al., OOPSLA'14): tiny
    state, full 64-bit output, and a cheap [split] that derives
    independent streams — convenient for giving each simulated device
    its own generator. Not cryptographically secure; protocol-level
    randomness in the simulation that must be unpredictable to the
    simulated adversary is modeled separately.

    {b Domain ownership rule.}  A [t] is mutable, unsynchronised state:
    it must only ever be advanced by the domain that created it.  Never
    capture a shared handle (e.g. the runtime's per-system stream) in a
    task submitted to [Mycelium_parallel.Pool] — concurrent draws are a
    data race, and even a benign race would make the stream, and thus
    every result derived from it, depend on scheduling.  The pattern
    used throughout the pipeline instead:

    + on the owning domain, draw one fresh seed per parallel phase
      ([int64]);
    + derive a per-task key from that seed and the task's {e stable
      coordinates} (device id, (source, dest) pair, ...) with the pure
      [mix64] — never from the task's position in a work queue;
    + [create] a task-local generator from the key inside the task.

    This pre-splits the stream so results are byte-identical at any
    domain count.  [split] and [copy] are for single-domain use; they do
    not make sharing safe. *)

(* lint: allow interface — a generator is an owned mutable stream;
   handles are compared by identity, never by structure *)
type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val mix64 : int64 -> int64 -> int64
(** [mix64 a b] hash-combines two words through the SplitMix64
    finalizer. Pure: equal inputs give equal outputs. Used to derive
    stateless per-event decision keys (fault injection) where the
    outcome must not depend on evaluation order. *)

val bits62 : t -> int
(** Uniform non-negative [int] using 62 of the 64 output bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. Uses rejection sampling, so the distribution is exact. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] fresh pseudo-random bytes. *)

val fill : t -> Bytes.t -> pos:int -> len:int -> unit
(** [fill t b ~pos ~len] writes [len] fresh pseudo-random bytes into
    [b] at [pos] — the allocation-free form of {!bytes}: it draws the
    same stream, so [fill] into a slice and [bytes] of the same length
    advance the generator identically. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [\[0, n)], in random order. Raises [Invalid_argument] if [k > n]. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda) (mean [1/lambda]). *)

val laplace : t -> float -> float
(** [laplace t b] draws from the Laplace distribution with mean 0 and
    scale [b]. *)

val gaussian : t -> float -> float
(** [gaussian t sigma] draws from N(0, sigma^2) via Box–Muller. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli(p) failures before the first
    success; support {0,1,2,...}. *)
