type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step plus two xor-shift
   multiplies (variant "mix13"). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_int64

let split t =
  let seed = next_int64 t in
  (* Mix once more so that split streams do not share prefixes with the
     parent stream shifted by one. *)
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

let mix64 a b =
  (* One SplitMix64 step keyed by [a] with [b] folded into the state:
     a stateless hash-combine for deriving decision keys. *)
  let t = { state = Int64.logxor a (Int64.mul b 0xFF51AFD7ED558CCDL) } in
  next_int64 t

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top multiple of [n] below 2^62. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / n * n in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod n else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v *. 0x1.0p-53

let bool t = Int64.equal (Int64.logand (next_int64 t) 1L) 1L

let bernoulli t p = float t < p

let fill t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Rng.fill";
  let full = len / 8 in
  for i = 0 to full - 1 do
    Bytes.set_int64_le b (pos + (i * 8)) (next_int64 t)
  done;
  let rem = len - (full * 8) in
  if rem > 0 then begin
    let v = ref (next_int64 t) in
    for i = 0 to rem - 1 do
      Bytes.set_uint8 b (pos + (full * 8) + i) (Int64.to_int (Int64.logand !v 0xFFL));
      v := Int64.shift_right_logical !v 8
    done
  end

let bytes t n =
  let b = Bytes.create n in
  fill t b ~pos:0 ~len:n;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n || k < 0 then invalid_arg "Rng.sample_without_replacement";
  if k * 3 >= n then begin
    (* Dense case: shuffle a full index array and take a prefix. *)
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.sub a 0 k
  end else begin
    (* Sparse case: rejection with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: lambda must be positive";
  -.log1p (-.float t) /. lambda

let laplace t b =
  if b <= 0. then invalid_arg "Rng.laplace: scale must be positive";
  (* Difference of two exponentials avoids the u=0.5 singularity of the
     inverse-CDF form. *)
  let e1 = exponential t 1.0 and e2 = exponential t 1.0 in
  b *. (e1 -. e2)

let gaussian t sigma =
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0,1]";
  if Float.equal p 1. then 0
  else
    let u = float t in
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))
