let sum a = Array.fold_left ( +. ) 0. a

let mean a =
  let n = Array.length a in
  if n = 0 then 0. else sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median a = percentile a 50.

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

type running = { mutable n : int; mutable m : float; mutable s : float }

let running_create () = { n = 0; m = 0.; s = 0. }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.n);
  r.s <- r.s +. (delta *. (x -. r.m))

let running_count r = r.n
let running_mean r = r.m

let running_stddev r =
  if r.n < 2 then 0. else sqrt (r.s /. float_of_int r.n)
