module Rng = Mycelium_util.Rng

type sensitivity = float

let histo_sensitivity ~neighborhood_bound =
  if neighborhood_bound < 1 then invalid_arg "Dp.histo_sensitivity: bound must be >= 1";
  2. *. float_of_int neighborhood_bound

let gsum_sensitivity ~clip_lo ~clip_hi ~neighborhood_bound =
  if clip_hi < clip_lo then invalid_arg "Dp.gsum_sensitivity: empty clipping range";
  if neighborhood_bound < 1 then invalid_arg "Dp.gsum_sensitivity: bound must be >= 1";
  (clip_hi -. clip_lo) *. float_of_int neighborhood_bound

let laplace_noise rng ~sensitivity ~epsilon =
  if epsilon <= 0. then invalid_arg "Dp.laplace_noise: epsilon must be positive";
  if epsilon = Float.infinity then 0. else Rng.laplace rng (sensitivity /. epsilon)

let noise_vector rng ~sensitivity ~epsilon n =
  Array.init n (fun _ -> laplace_noise rng ~sensitivity ~epsilon)

let release_histogram rng ~sensitivity ~epsilon counts =
  Array.map
    (fun c -> float_of_int c +. laplace_noise rng ~sensitivity ~epsilon)
    counts

let release_sum rng ~sensitivity ~epsilon v = v +. laplace_noise rng ~sensitivity ~epsilon

type accounting = Basic | Advanced of { delta : float }

let composed_epsilon accounting epsilons =
  match accounting with
  | Basic -> List.fold_left ( +. ) 0. epsilons
  | Advanced { delta } ->
    if delta <= 0. || delta >= 1. then invalid_arg "Dp: delta must be in (0,1)";
    let sum_sq = List.fold_left (fun acc e -> acc +. (e *. e)) 0. epsilons in
    let linear = List.fold_left (fun acc e -> acc +. (e *. (exp e -. 1.))) 0. epsilons in
    sqrt (2. *. log (1. /. delta) *. sum_sq) +. linear

type above_threshold = {
  rng : Rng.t;
  noisy_threshold : float;
  query_scale : float;
  mutable exhausted : bool;
}

let above_threshold_create rng ~sensitivity ~epsilon ~threshold =
  if epsilon <= 0. then invalid_arg "Dp.above_threshold_create: epsilon must be positive";
  if sensitivity <= 0. then invalid_arg "Dp.above_threshold_create: sensitivity must be positive";
  {
    rng;
    noisy_threshold = threshold +. Rng.laplace rng (2. *. sensitivity /. epsilon);
    query_scale = 4. *. sensitivity /. epsilon;
    exhausted = false;
  }

let above_threshold_query t value =
  if t.exhausted then Error `Exhausted
  else begin
    let noisy = value +. Rng.laplace t.rng t.query_scale in
    if noisy >= t.noisy_threshold then begin
      t.exhausted <- true;
      Ok true
    end
    else Ok false
  end

let above_threshold_exhausted t = t.exhausted

(* The accountant keeps running sums so a charge is O(1) regardless of
   how many queries came before, and serializes chargers behind a mutex
   so concurrent admission (the serving layer's accountant fans charges
   in from many queries) can never over-admit past [total].

   The sums accumulate in charge order — oldest first.  This matters
   for Basic accounting: [Obs.Ledger.summarize] folds the charged
   epsilons in file order (also oldest first), and the audit contract
   says that fold reproduces [budget_spent] bit for bit.  Floating
   addition is not associative, so both sides must add in the same
   order. *)
type budget = {
  total : float;
  accounting : accounting;
  lock : Mutex.t;
  mutable history : float list;  (* newest first, for [budget_history] *)
  mutable sum : float;           (* Σ eps, oldest-first accumulation *)
  mutable sum_sq : float;        (* Σ eps², for Advanced *)
  mutable linear : float;        (* Σ eps (e^eps - 1), for Advanced *)
}

let budget_create ?(accounting = Basic) ~total () =
  if total <= 0. then invalid_arg "Dp.budget_create: total must be positive";
  (match accounting with
  | Advanced { delta } when delta <= 0. || delta >= 1. ->
    invalid_arg "Dp.budget_create: delta must be in (0,1)"
  | Advanced _ | Basic -> ());
  {
    total;
    accounting;
    lock = Mutex.create ();
    history = [];
    sum = 0.;
    sum_sq = 0.;
    linear = 0.;
  }

let composed_of_sums accounting ~sum ~sum_sq ~linear =
  match accounting with
  | Basic -> sum
  | Advanced { delta } -> sqrt (2. *. log (1. /. delta) *. sum_sq) +. linear

let with_lock b f =
  Mutex.lock b.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.lock) f

let spent_locked b =
  composed_of_sums b.accounting ~sum:b.sum ~sum_sq:b.sum_sq ~linear:b.linear

let budget_spent b = with_lock b (fun () -> spent_locked b)
let budget_remaining b = with_lock b (fun () -> b.total -. spent_locked b)

let budget_charge b eps =
  if eps <= 0. then invalid_arg "Dp.budget_charge: epsilon must be positive";
  with_lock b (fun () ->
      let sum = b.sum +. eps in
      let sum_sq = b.sum_sq +. (eps *. eps) in
      let linear = b.linear +. (eps *. (exp eps -. 1.)) in
      let would_be = composed_of_sums b.accounting ~sum ~sum_sq ~linear in
      if would_be > b.total +. 1e-12 then
        Error (`Exhausted (b.total -. spent_locked b))
      else begin
        b.history <- eps :: b.history;
        b.sum <- sum;
        b.sum_sq <- sum_sq;
        b.linear <- linear;
        Ok ()
      end)

let budget_history b = with_lock b (fun () -> b.history)
