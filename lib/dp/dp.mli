(** Differential privacy: the Laplace mechanism, sensitivity bounds and
    budget accounting (§2.3, §4.4, §4.7).

    Sensitivity in Mycelium is bounded statically: for HISTO terms it is
    2 per device in the local neighborhood (moving one unit between two
    bins); for GSUM terms it is the clipping-range width. The total
    sensitivity multiplies by the neighborhood-size bound because one
    device's data can influence every origin vertex within k hops. *)

type sensitivity = float

val histo_sensitivity : neighborhood_bound:int -> sensitivity
(** 2 * (number of origin vertices one device can influence): "it is
    always two because, by changing its local contribution, a vertex
    can at most decrease the count in one bin by 1 and increase the
    count in another" (§4.7). *)

val gsum_sensitivity : clip_lo:float -> clip_hi:float -> neighborhood_bound:int -> sensitivity
(** Clipping-range width times the influence bound. *)

val laplace_noise : Mycelium_util.Rng.t -> sensitivity:sensitivity -> epsilon:float -> float
(** One draw of Lap(sensitivity / epsilon). *)

val noise_vector :
  Mycelium_util.Rng.t -> sensitivity:sensitivity -> epsilon:float -> int -> float array

val release_histogram :
  Mycelium_util.Rng.t ->
  sensitivity:sensitivity ->
  epsilon:float ->
  int array ->
  float array
(** Noised bin counts. [epsilon = infinity] releases exact counts
    (used by tests to compare against the plaintext oracle). *)

val release_sum :
  Mycelium_util.Rng.t -> sensitivity:sensitivity -> epsilon:float -> float -> float

(** {2 Privacy budget (§4.4)} *)

type accounting =
  | Basic  (** sequential composition: charge the full epsilon of every
               query — "safe but conservative" (§4.4) *)
  | Advanced of { delta : float }
      (** the advanced composition theorem (Dwork–Roth §3.5, cited by
          §4.4 as a way to "stretch the budget further"): k queries of
          eps_i cost sqrt(2 ln(1/delta) sum eps_i^2) +
          sum eps_i (e^eps_i - 1) overall, at the price of a small
          delta. *)

type budget
(** The accountant is thread-safe: charges and reads serialize behind
    an internal mutex, and the composition state is kept as O(1)
    running sums (accumulated in charge order, oldest first — the same
    order [Obs.Ledger.summarize] folds in, so audit totals reproduce
    [budget_spent] bit for bit). Concurrent chargers can therefore
    never jointly overdraw [total]. *)

val budget_create : ?accounting:accounting -> total:float -> unit -> budget

val budget_remaining : budget -> float
val budget_spent : budget -> float

val budget_charge : budget -> float -> (unit, [ `Exhausted of float ]) result
(** Deduct the full epsilon of a query ("safe but conservative", §4.4);
    fails, charging nothing, if it would overdraw. Atomic: check and
    deduction happen under one lock acquisition. *)

val budget_history : budget -> float list
(** Charges so far, newest first. *)

val composed_epsilon : accounting -> float list -> float
(** Total privacy loss of a list of per-query epsilons under the given
    accountant (exposed for tests and reporting). *)

(** {2 Sparse vector (above-threshold)}

    The other refinement §4.4 names (via Honeycrisp): answer a stream
    of "is this statistic above T?" probes for one epsilon total — only
    the (at most one) positive answer is paid for; negative answers are
    free. The classic AboveThreshold mechanism (Dwork–Roth Alg. 1). *)

type above_threshold

val above_threshold_create :
  Mycelium_util.Rng.t ->
  sensitivity:sensitivity ->
  epsilon:float ->
  threshold:float ->
  above_threshold
(** Draws the noisy threshold T + Lap(2s/eps); the whole stream costs
    [epsilon]. *)

val above_threshold_query :
  above_threshold -> float -> (bool, [ `Exhausted ]) result
(** [Ok true] halts the mechanism: one positive answer per epsilon.
    Subsequent probes return [Error `Exhausted]. *)

val above_threshold_exhausted : above_threshold -> bool
