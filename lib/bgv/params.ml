type t = {
  degree : int;
  plain_modulus : int;
  prime_bits : int;
  levels : int;
  error_eta : int;
}

let test_small =
  { degree = 256; plain_modulus = 257; prime_bits = 28; levels = 4; error_eta = 2 }

let test_medium =
  { degree = 1024; plain_modulus = 65537; prime_bits = 28; levels = 8; error_eta = 2 }

let test_wide =
  { degree = 4096; plain_modulus = 65537; prime_bits = 30; levels = 16; error_eta = 2 }

let paper =
  { degree = 32768; plain_modulus = 1 lsl 30; prime_bits = 30; levels = 19; error_eta = 2 }

let equal a b =
  Int.equal a.degree b.degree
  && Int.equal a.plain_modulus b.plain_modulus
  && Int.equal a.prime_bits b.prime_bits
  && Int.equal a.levels b.levels
  && Int.equal a.error_eta b.error_eta

let modulus_bits t = t.prime_bits * t.levels

let ciphertext_bytes t ~degree =
  let coeff_bytes = (modulus_bits t + 7) / 8 in
  (degree + 1) * t.degree * coeff_bytes

let plaintext_bytes t =
  let bits =
    let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
    go 0 (t.plain_modulus - 1)
  in
  (t.degree * ((bits + 7) / 8 * 8)) / 8

let validate t =
  if t.degree land (t.degree - 1) <> 0 || t.degree < 2 then
    invalid_arg "Params: degree must be a power of two >= 2";
  if t.plain_modulus < 2 then invalid_arg "Params: plain_modulus must be >= 2";
  if t.prime_bits < 20 || t.prime_bits > 30 then
    invalid_arg "Params: prime_bits must be in [20, 30]";
  if t.levels < 1 then invalid_arg "Params: levels must be >= 1";
  if t.error_eta < 1 then invalid_arg "Params: error_eta must be >= 1"
