type t = { t_mod : int; n : int; c : int array }

let create ~plain_modulus coeffs =
  if plain_modulus < 2 then invalid_arg "Plaintext.create: bad modulus";
  let c = Array.map (fun v -> ((v mod plain_modulus) + plain_modulus) mod plain_modulus) coeffs in
  { t_mod = plain_modulus; n = Array.length coeffs; c }

let zero ~plain_modulus ~degree = { t_mod = plain_modulus; n = degree; c = Array.make degree 0 }

let monomial ~plain_modulus ~degree ~exponent =
  if exponent < 0 || exponent >= degree then
    invalid_arg "Plaintext.monomial: exponent out of ring degree (too many bins)";
  let c = Array.make degree 0 in
  c.(exponent) <- 1;
  { t_mod = plain_modulus; n = degree; c }

let value_encode ~plain_modulus ~degree v = monomial ~plain_modulus ~degree ~exponent:v

let coeffs t = t.c
let plain_modulus t = t.t_mod
let degree t = t.n

let coeff t i = if i < Array.length t.c then t.c.(i) else 0

let is_monomial t =
  let found = ref None and multiple = ref false in
  Array.iteri
    (fun i v ->
      if v <> 0 then
        match !found with Some _ -> multiple := true | None -> found := Some (i, v))
    t.c;
  if !multiple then None else !found

let add a b =
  if a.t_mod <> b.t_mod then invalid_arg "Plaintext.add: modulus mismatch";
  let n = max a.n b.n in
  let c = Array.init n (fun i -> (coeff a i + coeff b i) mod a.t_mod) in
  { t_mod = a.t_mod; n; c }

let equal a b =
  a.t_mod = b.t_mod
  &&
  let n = max (Array.length a.c) (Array.length b.c) in
  let rec go i = i >= n || (Int.equal (coeff a i) (coeff b i) && go (i + 1)) in
  go 0

let histogram t ~max_bin =
  Array.init (max_bin + 1) (fun i ->
      let v = coeff t i in
      if v > t.t_mod / 2 then v - t.t_mod else v)

let pp fmt t =
  Format.fprintf fmt "[";
  let printed = ref 0 in
  Array.iteri
    (fun i v ->
      if v <> 0 && !printed < 12 then begin
        if !printed > 0 then Format.fprintf fmt " + ";
        if v = 1 then Format.fprintf fmt "x^%d" i else Format.fprintf fmt "%d*x^%d" v i;
        incr printed
      end)
    t.c;
  if !printed = 0 then Format.fprintf fmt "0";
  Format.fprintf fmt "]"
