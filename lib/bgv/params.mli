(** BGV parameter sets.

    The paper (§5) uses N = 32768, a 550-bit ciphertext modulus, and
    plaintext modulus 2^30 — large enough to "bin"-aggregate over a
    billion devices and encode values of up to 30 bits. Running those
    parameters in a pure-OCaml simulation of millions of devices would
    be pointless, so, like the paper itself (§6.1), we benchmark
    scaled-down parameters and extrapolate with {!paper}'s dimensions
    (see [Mycelium_costmodel]). *)

type t = {
  degree : int;  (** ring degree N (a power of two) *)
  plain_modulus : int;  (** t; must be coprime with every prime *)
  prime_bits : int;  (** bits per RNS prime (<= 30) *)
  levels : int;  (** number of RNS primes; q has ~levels*prime_bits bits *)
  error_eta : int;  (** centered-binomial error parameter *)
}

val equal : t -> t -> bool
(** Field-wise equality; equal parameter sets build interchangeable
    contexts. *)

val test_small : t
(** N=256: fast unit tests. *)

val test_medium : t
(** N=1024, deeper modulus: multi-hop aggregation tests. *)

val test_wide : t
(** N=4096 with a 16-prime modulus: supports products of ~10
    ciphertexts, the degree bound d of Figure 4. *)

val paper : t
(** N=32768, 19 30-bit primes (~550-bit q), t=2^30: the paper's
    parameter set. Too heavy for unit tests, but runnable end-to-end:
    [bench --only ringops] drives keygen/encrypt/mul/relinearize/
    decrypt at these dimensions on the Montgomery backend (with
    [~digit_bits:30] relinearization keys); the cost model uses it for
    sizes and extrapolation. *)

val modulus_bits : t -> int
(** Approximate bits of q. *)

val ciphertext_bytes : t -> degree:int -> int
(** Serialized size of a ciphertext with [degree+1] ring components:
    each stores N coefficients of [modulus_bits] bits. With {!paper}
    and degree 1 this is ~4.5 MB, matching the paper's 4.3 MB. *)

val plaintext_bytes : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent settings. *)
