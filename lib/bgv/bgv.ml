module Rng = Mycelium_util.Rng
module Pool = Mycelium_parallel.Pool
module Bigint = Mycelium_math.Bigint
module Rns = Mycelium_math.Rns
module Rq = Mycelium_math.Rq
module Modarith = Mycelium_math.Modarith
module Obs = Mycelium_obs.Obs

(* Scheme-level observability: op counters plus a sampled span on the
   homomorphic multiply (the dominant cost), one span per 64 calls.
   Call sites guard on [Obs.enabled] so the disabled path is a single
   branch with no allocation. *)
let m_encrypts = Obs.Metrics.counter Obs.Names.bgv_encrypts
let m_ct_muls = Obs.Metrics.counter Obs.Names.bgv_ciphertext_muls
let m_relins = Obs.Metrics.counter Obs.Names.bgv_relinearizations
let ct_mul_sampler = Obs.sampler ~every:64

type ctx = { p : Params.t; basis : Rns.t; fresh_noise_bits : float }

let make_ctx ?backend p =
  Params.validate p;
  let basis =
    Rns.standard ?backend ~degree:p.Params.degree ~prime_bits:p.Params.prime_bits
      ~levels:p.Params.levels ()
  in
  (* t must be invertible mod q for the scheme to be non-degenerate. *)
  Array.iter
    (fun prime ->
      if p.Params.plain_modulus mod prime = 0 then
        invalid_arg "Bgv.make_ctx: plain modulus shares a factor with q")
    (Rns.primes basis);
  let fresh_noise_bits =
    (* |t (e1 + e2 s - e u)| <~ t * (2 N eta + eta): a worst-case bound. *)
    let t_bits = log (float_of_int p.Params.plain_modulus) /. log 2. in
    let n_bits = log (float_of_int p.Params.degree) /. log 2. in
    let eta_bits = log (float_of_int p.Params.error_eta) /. log 2. in
    t_bits +. n_bits +. eta_bits +. 2.
  in
  { p; basis; fresh_noise_bits }

let params ctx = ctx.p
let basis ctx = ctx.basis
let plain_modulus ctx = ctx.p.Params.plain_modulus
let modulus_bits ctx = Rns.modulus_bits ctx.basis

type secret_key = { s : Rq.t }
type public_key = { p0 : Rq.t; p1 : Rq.t }

type ciphertext = { comps : Rq.t array; noise_bits : float }

(* ksk for one power j: per digit index, (k0, k1). *)
type relin_key = { digit_bits : int; keys : (Rq.t * Rq.t) array array (* [power-2].[digit] *) }

let relin_max_degree rk = Array.length rk.keys + 1

let plaintext_to_rq ctx pt =
  if not (Int.equal (Plaintext.plain_modulus pt) ctx.p.Params.plain_modulus) then
    invalid_arg "Bgv: plaintext modulus mismatch";
  Rq.of_centered_coeffs ctx.basis (Plaintext.coeffs pt)

let keygen ctx rng =
  let s = Rq.sample_ternary ctx.basis rng in
  let a = Rq.random_uniform ctx.basis rng in
  let e = Rq.sample_cbd ctx.basis ~eta:ctx.p.Params.error_eta rng in
  let te = Rq.mul_scalar e ctx.p.Params.plain_modulus in
  let p0 = Rq.neg (Rq.add (Rq.mul a s) te) in
  (* The public key (and s, via the mul above) is shared by every
     device encryption, and those run under the domain pool: pin the
     evaluation-domain representation here, outside any parallel
     region, so encrypt never converts shared state. *)
  Rq.force_eval p0;
  Rq.force_eval a;
  Rq.force_eval s;
  ({ s }, { p0; p1 = a })

let encrypt ctx rng pk pt =
  if Obs.enabled () then Obs.Metrics.incr m_encrypts;
  let m = plaintext_to_rq ctx pt in
  let u = Rq.sample_ternary ctx.basis rng in
  let eta = ctx.p.Params.error_eta in
  let t = ctx.p.Params.plain_modulus in
  let e1 = Rq.mul_scalar (Rq.sample_cbd ctx.basis ~eta rng) t in
  let e2 = Rq.mul_scalar (Rq.sample_cbd ctx.basis ~eta rng) t in
  let c0 = Rq.add (Rq.add (Rq.mul pk.p0 u) e1) m in
  let c1 = Rq.add (Rq.mul pk.p1 u) e2 in
  { comps = [| c0; c1 |]; noise_bits = ctx.fresh_noise_bits }

let encrypt_value ctx rng pk v =
  encrypt ctx rng pk
    (Plaintext.monomial ~plain_modulus:ctx.p.Params.plain_modulus ~degree:ctx.p.Params.degree
       ~exponent:v)

let encrypt_zero_polynomial ctx rng pk =
  encrypt ctx rng pk
    (Plaintext.zero ~plain_modulus:ctx.p.Params.plain_modulus ~degree:ctx.p.Params.degree)

let degree ct = Array.length ct.comps - 1
let components ct = ct.comps

(* c(s) = c_0 + c_1 s + ... + c_D s^D by Horner's rule. *)
let eval_at_secret ct s =
  let d = degree ct in
  let acc = ref ct.comps.(d) in
  for i = d - 1 downto 0 do
    acc := Rq.add (Rq.mul !acc s) ct.comps.(i)
  done;
  !acc

let decode_noisy ctx v =
  let t = ctx.p.Params.plain_modulus in
  let big_t = Bigint.of_int t in
  let coeffs =
    Array.map (fun c -> Bigint.to_int (Bigint.erem c big_t)) (Rq.to_bigint_coeffs v)
  in
  Plaintext.create ~plain_modulus:t coeffs

let decrypt ctx sk ct = decode_noisy ctx (eval_at_secret ct sk.s)

let pad comps n =
  if Array.length comps >= n then comps
  else begin
    let basis = Rq.basis_of comps.(0) in
    Array.init n (fun i -> if i < Array.length comps then comps.(i) else Rq.zero basis)
  end

let add a b =
  let n = max (Array.length a.comps) (Array.length b.comps) in
  let ca = pad a.comps n and cb = pad b.comps n in
  {
    comps = Array.init n (fun i -> Rq.add ca.(i) cb.(i));
    noise_bits = Float.max a.noise_bits b.noise_bits +. 1.;
  }

let sub a b =
  let n = max (Array.length a.comps) (Array.length b.comps) in
  let ca = pad a.comps n and cb = pad b.comps n in
  {
    comps = Array.init n (fun i -> Rq.sub ca.(i) cb.(i));
    noise_bits = Float.max a.noise_bits b.noise_bits +. 1.;
  }

let add_plain ctx ct pt =
  let m = plaintext_to_rq ctx pt in
  let comps = Array.copy ct.comps in
  comps.(0) <- Rq.add comps.(0) m;
  { ct with comps }

let sub_plain ctx ct pt =
  let m = plaintext_to_rq ctx pt in
  let comps = Array.copy ct.comps in
  comps.(0) <- Rq.sub comps.(0) m;
  { ct with comps }

let mul_impl a b =
  let da = Array.length a.comps and db = Array.length b.comps in
  let basis = Rq.basis_of a.comps.(0) in
  (* Forward-transform every component once, before the fan-out: the
     degree-k cross terms then reuse the cached evaluation forms (a
     component appears in up to min(da,db) diagonals), and no two pool
     tasks race to convert a shared component. *)
  Array.iter Rq.force_eval a.comps;
  Array.iter Rq.force_eval b.comps;
  (* Each output component of the tensor product is an independent
     convolution diagonal, computed as a fused dot product of the two
     component slices; dot accumulates in ascending-i order so the
     result is identical at any domain count. *)
  let out =
    Pool.init (Pool.default ()) (da + db - 1) (fun k ->
        let lo = max 0 (k - db + 1) and hi = min (da - 1) k in
        let xs = Array.sub a.comps lo (hi - lo + 1) in
        let ys = Array.init (hi - lo + 1) (fun i -> b.comps.(k - lo - i)) in
        Rq.dot xs ys)
  in
  let n_bits = log (float_of_int (Rns.degree basis)) /. log 2. in
  { comps = out; noise_bits = a.noise_bits +. b.noise_bits +. n_bits +. 1. }

let mul a b =
  if not (Obs.enabled ()) then mul_impl a b
  else begin
    Obs.Metrics.incr m_ct_muls;
    Obs.sampled_span ct_mul_sampler "bgv.mul"
      ~attrs:
        [ ("da", Obs.Json.Int (Array.length a.comps));
          ("db", Obs.Json.Int (Array.length b.comps)) ]
      (fun () -> mul_impl a b)
  end

let mul_plain ctx ct pt =
  let m = plaintext_to_rq ctx pt in
  let nonzero = Array.fold_left (fun acc c -> if c <> 0 then acc + 1 else acc) 0 (Plaintext.coeffs pt) in
  let growth = log (float_of_int (max 2 nonzero * ctx.p.Params.plain_modulus)) /. log 2. in
  {
    comps = Array.map (fun c -> Rq.mul c m) ct.comps;
    noise_bits = ct.noise_bits +. growth;
  }

let mul_many = function
  | [] -> invalid_arg "Bgv.mul_many: empty list"
  | [ ct ] -> ct
  | cts ->
    (* Balanced product tree keeps the degree identical but reduces the
       depth-induced estimate pessimism. *)
    let rec round = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> mul x y :: round rest
    in
    let rec go = function [ x ] -> x | xs -> go (round xs) in
    go cts

(* --- relinearization ------------------------------------------------ *)

let relin_keygen ?(digit_bits = 8) ctx rng sk ~max_degree =
  if max_degree < 2 then invalid_arg "Bgv.relin_keygen: max_degree must be >= 2";
  if digit_bits < 1 || digit_bits > 30 then
    invalid_arg "Bgv.relin_keygen: digit_bits must be in [1, 30]";
  let qbits = modulus_bits ctx in
  let ndigits = (qbits + digit_bits - 1) / digit_bits in
  let t = ctx.p.Params.plain_modulus in
  let base_big = Bigint.shift_left Bigint.one digit_bits in
  (* Powers of the secret: s^2 .. s^max_degree. *)
  let powers = Array.make (max_degree - 1) sk.s in
  let cur = ref sk.s in
  for i = 0 to max_degree - 2 do
    cur := Rq.mul !cur sk.s;
    powers.(i) <- !cur
  done;
  let keys =
    Array.map
      (fun s_pow ->
        Array.init ndigits (fun idx ->
            let a = Rq.random_uniform ctx.basis rng in
            let e = Rq.mul_scalar (Rq.sample_cbd ctx.basis ~eta:ctx.p.Params.error_eta rng) t in
            let weight = Bigint.pow base_big idx in
            let weight_res =
              Array.map (fun p -> Bigint.rem_int weight p) (Rns.primes ctx.basis)
            in
            let k0 =
              Rq.add (Rq.neg (Rq.add (Rq.mul a sk.s) e)) (Rq.mul_scalar_residues s_pow weight_res)
            in
            (* Key digits are multiplied into decomposed ciphertext
               digits on every relinearization, in parallel: pin them
               to the evaluation domain once, here. *)
            Rq.force_eval k0;
            Rq.force_eval a;
            (k0, a)))
      powers
  in
  { digit_bits; keys }

(* Base-2^w digits of every coefficient of [v], as ring elements. *)
let digit_decompose ctx rk v =
  let qbits = modulus_bits ctx in
  let ndigits = (qbits + rk.digit_bits - 1) / rk.digit_bits in
  let n = Rns.degree ctx.basis in
  let digit_coeffs = Array.init ndigits (fun _ -> Array.make n 0) in
  let big = Rq.to_bigint_coeffs v in
  let q = Rns.modulus ctx.basis in
  let mask = (1 lsl rk.digit_bits) - 1 in
  Array.iteri
    (fun i c ->
      (* Non-negative representative in [0, q). *)
      let c = if Bigint.sign c < 0 then Bigint.add c q else c in
      (* Peel digits via limb arithmetic on the byte string. *)
      let rec peel v idx =
        if idx < ndigits && not (Bigint.is_zero v) then begin
          let d = Bigint.rem_int v (mask + 1) in
          digit_coeffs.(idx).(i) <- d;
          peel (Bigint.shift_right v rk.digit_bits) (idx + 1)
        end
      in
      peel c 0)
    big;
  Array.map (fun coeffs -> Rq.of_centered_coeffs ctx.basis coeffs) digit_coeffs

let relinearize ctx rk ct =
  let d = degree ct in
  if d <= 1 then ct
  else if d > relin_max_degree rk then
    invalid_arg "Bgv.relinearize: ciphertext degree exceeds relin key"
  else begin
    if Obs.enabled () then Obs.Metrics.incr m_relins;
    let c0 = ref ct.comps.(0) and c1 = ref ct.comps.(1) in
    for j = 2 to d do
      let digits = digit_decompose ctx rk ct.comps.(j) in
      let ksk = rk.keys.(j - 2) in
      (* Key-switch products per digit are independent; accumulate them
         sequentially in digit order for a fixed combine order. *)
      let prods =
        Pool.mapi_array (Pool.default ())
          (fun idx dig ->
            let k0, k1 = ksk.(idx) in
            (Rq.mul dig k0, Rq.mul dig k1))
          digits
      in
      Array.iter
        (fun (p0, p1) ->
          c0 := Rq.add !c0 p0;
          c1 := Rq.add !c1 p1)
        prods
    done;
    let qbits = float_of_int (modulus_bits ctx) in
    let relin_noise =
      (* ndigits * B * N * eta * t *)
      let ndigits = qbits /. float_of_int rk.digit_bits in
      log (ndigits *. float_of_int (1 lsl rk.digit_bits)) /. log 2.
      +. log (float_of_int ctx.p.Params.degree) /. log 2.
      +. log (float_of_int (ctx.p.Params.error_eta * ctx.p.Params.plain_modulus)) /. log 2.
    in
    { comps = [| !c0; !c1 |]; noise_bits = Float.max ct.noise_bits relin_noise +. 1. }
  end

(* --- modulus switching ------------------------------------------------ *)

let drop_level ctx =
  if ctx.p.Params.levels < 2 then invalid_arg "Bgv.drop_level: single-prime context";
  (* Keep the child context on the parent's (resolved) ring backend so
     a pipeline pinned to one backend stays on it across levels. *)
  make_ctx
    ~backend:(Rns.backend_name ctx.basis)
    { ctx.p with Params.levels = ctx.p.Params.levels - 1 }

(* Modular inverse by extended Euclid; t need not be prime. *)
let inv_mod m a =
  let rec go old_r r old_s s =
    if r = 0 then (old_r, old_s)
    else begin
      let q = old_r / r in
      go r (old_r - (q * r)) s (old_s - (q * s))
    end
  in
  let g, x = go m (((a mod m) + m) mod m) 0 1 in
  if g <> 1 then invalid_arg "Bgv: modulus switching needs gcd(p, t) = 1";
  ((x mod m) + m) mod m

(* Rescale one ring element from q to q/p_last while keeping the
   decryption invariant: write c = p_last * a + r and return
   c' = a + k with k = centered(r * p_last^-1 mod t). Then
   p_last * c' - c = p_last*k - r = 0 (mod t) and is divisible by
   p_last, so [c'(s)]_{q/p_last} = ([c(s)]_q + small)/p_last and the
   plaintext comes out scaled by p_last^-1 mod t (undone by the caller).

   This is a representation boundary: CRT reconstruction needs
   coefficients, so the input is read through a coefficient-domain
   snapshot (leaving its resident Eval form untouched) and the rescaled
   output enters the smaller basis as Coeff; the next multiplication
   lazily moves it back to Eval. *)
let mod_switch_poly small_ctx big_basis v =
  let primes = Rns.primes big_basis in
  let p_last = primes.(Array.length primes - 1) in
  let t = small_ctx.p.Params.plain_modulus in
  let big_p = Bigint.of_int p_last in
  let p_inv_t = inv_mod t p_last in
  let coeffs = Rq.to_bigint_coeffs v in
  let switched =
    Array.map
      (fun c ->
        let r = Bigint.erem c big_p in
        let a = Bigint.div (Bigint.sub c r) big_p in
        let k = Modarith.mul t (Bigint.rem_int r t) p_inv_t in
        let k = if k > t / 2 then k - t else k in
        Bigint.add a (Bigint.of_int k))
      coeffs
  in
  (* Project each (still centered, now smaller) coefficient onto the
     reduced basis. *)
  let rows =
    Array.map
      (fun p -> Array.map (fun c -> Bigint.rem_int c p) switched)
      (Rns.primes small_ctx.basis)
  in
  Rq.of_residues small_ctx.basis rows

let mod_switch small_ctx ct =
  let big_basis = Rq.basis_of ct.comps.(0) in
  if Rns.level_count big_basis <> Rns.level_count small_ctx.basis + 1 then
    invalid_arg "Bgv.mod_switch: ciphertext must live one level above the target context";
  let primes = Rns.primes big_basis in
  let p_last = primes.(Array.length primes - 1) in
  let t = small_ctx.p.Params.plain_modulus in
  (* Dividing by p_last scales the plaintext by p_last^-1 mod t (our
     NTT primes are not = 1 mod t, the textbook assumption that avoids
     this); multiplying the switched ciphertext by the plaintext
     constant (p_last mod t) undoes it, costing log2(t) of the freshly
     gained noise budget. *)
  let correction = Modarith.reduce t p_last in
  let comps =
    Array.map
      (fun c -> Rq.mul_scalar (mod_switch_poly small_ctx big_basis c) correction)
      ct.comps
  in
  let dropped_bits = log (float_of_int p_last) /. log 2. in
  let t_bits = log (float_of_int t) /. log 2. in
  let floor_bits =
    (* the additive k*s^i terms: ~ t * N per component, times the
       correction scalar *)
    log (float_of_int (t * small_ctx.p.Params.degree)) /. log 2. +. t_bits
  in
  { comps; noise_bits = Float.max (ct.noise_bits -. dropped_bits +. t_bits) floor_bits }

let project_secret_key small_ctx sk =
  let coeffs = Rq.to_bigint_coeffs sk.s in
  let rows =
    Array.map
      (fun p -> Array.map (fun c -> Bigint.rem_int c p) coeffs)
      (Rns.primes small_ctx.basis)
  in
  { s = Rq.of_residues small_ctx.basis rows }

(* --- noise measurement ---------------------------------------------- *)

let noise_estimate_bits ct = ct.noise_bits

let noise_budget ctx sk ct =
  let v = eval_at_secret ct sk.s in
  let coeffs = Rq.to_bigint_coeffs v in
  (* The invariant noise is v with the (tiny, < t) message folded in;
     budget = bits(q/2) - bits(max |v_i|). *)
  let max_bits = Array.fold_left (fun acc c -> max acc (Bigint.num_bits c)) 0 coeffs in
  modulus_bits ctx - 1 - max_bits

(* --- serialization --------------------------------------------------- *)

let ciphertext_bytes ctx ct = Params.ciphertext_bytes ctx.p ~degree:(degree ct)

let serialize ct =
  let buf = Buffer.create 4096 in
  let add_i32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  add_i32 (Array.length ct.comps);
  Array.iter
    (fun comp ->
      (* Serialize rows in whatever domain the component is resident
         in, tagged, so the wire format costs no transform in either
         direction.  The pipeline computes representations
         deterministically, so serialized bytes (and hence hashes and
         transcript-proof comparisons) are deterministic too. *)
      let rows = Rq.residues comp in
      add_i32 (match Rq.repr_of comp with Rq.Coeff -> 0 | Rq.Eval -> 1);
      add_i32 (Array.length rows);
      Array.iter
        (fun row ->
          add_i32 (Array.length row);
          Array.iter
            (fun v ->
              let b = Bytes.create 4 in
              Bytes.set_int32_le b 0 (Int32.of_int v);
              Buffer.add_bytes buf b)
            row)
        rows)
    ct.comps;
  Buffer.to_bytes buf

let deserialize ctx data =
  let pos = ref 0 in
  let len = Bytes.length data in
  let read_i32 () =
    if !pos + 4 > len then raise Exit
    else begin
      let v = Int32.to_int (Bytes.get_int32_le data !pos) in
      pos := !pos + 4;
      v
    end
  in
  try
    let ncomps = read_i32 () in
    if ncomps < 1 || ncomps > 64 then raise Exit;
    let comps =
      Array.init ncomps (fun _ ->
          let repr =
            match read_i32 () with 0 -> Rq.Coeff | 1 -> Rq.Eval | _ -> raise Exit
          in
          let nrows = read_i32 () in
          if not (Int.equal nrows (Rns.level_count ctx.basis)) then raise Exit;
          let rows =
            Array.init nrows (fun j ->
                let rowlen = read_i32 () in
                if not (Int.equal rowlen (Rns.degree ctx.basis)) then raise Exit;
                let prime = (Rns.primes ctx.basis).(j) in
                Array.init rowlen (fun _ ->
                    let v = read_i32 () in
                    if v < 0 || v >= prime then raise Exit;
                    v))
          in
          Rq.of_residues ~repr ctx.basis rows)
    in
    if !pos <> len then raise Exit;
    Some { comps; noise_bits = float_of_int (modulus_bits ctx) }
  with Exit -> None

(* --- threshold-decryption hooks -------------------------------------- *)

let secret_poly sk = sk.s
let secret_key_of_poly _ctx s = { s }

let linear_eval ct ~s =
  if degree ct <> 1 then invalid_arg "Bgv.linear_eval: ciphertext must be degree 1";
  Rq.add ct.comps.(0) (Rq.mul ct.comps.(1) s)
