(** The Brakerski–Gentry–Vaikuntanathan leveled homomorphic
    cryptosystem (BGV'11), as used by Mycelium (§4.1, §5).

    Ciphertexts are polynomials in the secret key s over R_q: a
    "degree-D" ciphertext has D+1 ring components (c_0, ..., c_D) and
    decrypts as [sum_i c_i s^i mod q] mod t. Multiplication is a
    convolution of component vectors, so products of fresh ciphertexts
    grow in degree. Following the paper (§5), relinearization can be
    deferred: devices multiply without relinearizing and the aggregator
    performs a one-time key switch before decryption.

    Noise: every ciphertext carries a conservative noise-bits estimate;
    the exact invariant noise can be measured against a secret key with
    {!noise_budget} (the tests do). *)

module Rq = Mycelium_math.Rq
module Rns = Mycelium_math.Rns

type ctx

val make_ctx : ?backend:string -> Params.t -> ctx
(** [?backend] pins the ring-kernel backend for the context's RNS basis
    (see {!Mycelium_math.Ring_backend}); by default the backend is
    selected per parameter profile.  The choice is invisible to every
    value this module produces: ciphertexts, keys, noise estimates and
    the wire format are bit-identical across backends. *)

val params : ctx -> Params.t
val basis : ctx -> Rns.t
val plain_modulus : ctx -> int
val modulus_bits : ctx -> int

type secret_key
type public_key

type relin_key
(** Key-switching keys for s^2 .. s^max; built by {!relin_keygen}. *)

type ciphertext

val keygen : ctx -> Mycelium_util.Rng.t -> secret_key * public_key

val relin_keygen :
  ?digit_bits:int -> ctx -> Mycelium_util.Rng.t -> secret_key -> max_degree:int -> relin_key
(** Supports relinearizing ciphertexts up to the given degree.
    [digit_bits] (default 8, range [\[1, 30]]) trades key size and
    keygen time against relinearization noise: ceil(qbits/digit_bits)
    key pairs are stored per power, each contributing noise
    proportional to 2^digit_bits.  Paper-scale contexts (N = 32768,
    ~550-bit q) want a coarser base, e.g. 30, to keep the key material
    in the hundreds of megabytes. *)

val relin_max_degree : relin_key -> int

val encrypt : ctx -> Mycelium_util.Rng.t -> public_key -> Plaintext.t -> ciphertext

val encrypt_value : ctx -> Mycelium_util.Rng.t -> public_key -> int -> ciphertext
(** [encrypt_value ctx rng pk a] encrypts the monomial x^a — the §4.1
    value encoding. *)

val encrypt_zero_polynomial : ctx -> Mycelium_util.Rng.t -> public_key -> ciphertext
(** Encrypts the zero polynomial (used when a WHERE predicate fails at
    the origin: "replaces the ciphertext with Enc(0)", §4.4). Note this
    is different from [encrypt_value _ _ _ 0] = Enc(x^0). *)

val decrypt : ctx -> secret_key -> ciphertext -> Plaintext.t

val degree : ciphertext -> int
val components : ciphertext -> Rq.t array

val add : ciphertext -> ciphertext -> ciphertext
val sub : ciphertext -> ciphertext -> ciphertext
val add_plain : ctx -> ciphertext -> Plaintext.t -> ciphertext
val sub_plain : ctx -> ciphertext -> Plaintext.t -> ciphertext
val mul : ciphertext -> ciphertext -> ciphertext
val mul_plain : ctx -> ciphertext -> Plaintext.t -> ciphertext
val mul_many : ciphertext list -> ciphertext
(** Balanced product tree; raises [Invalid_argument] on []. *)

val relinearize : ctx -> relin_key -> ciphertext -> ciphertext
(** Reduce any ciphertext of degree <= [relin_max_degree] back to
    degree 1. *)

(** {2 Modulus switching}

    What makes BGV *leveled* (footnote of §4.1): after a
    multiplication, rescaling the ciphertext from q to q/p_last divides
    the noise by p_last at the cost of one RNS level.

    A caveat of this implementation: textbook BGV switching assumes the
    dropped prime is = 1 (mod t); our NTT primes are only = 1 (mod 2N),
    so the rescale scales the plaintext by p^-1 mod t, which
    {!mod_switch} undoes with a plaintext-scalar multiplication. That
    correction costs ~log2(t) bits, so the net per-switch noise gain is
    (prime_bits - t_bits) — substantial for small plaintext moduli,
    marginal for t near the prime size. Choosing primes = 1 (mod 2Nt)
    removes the correction but sharply thins the prime pool at the
    word sizes this library uses. *)

val drop_level : ctx -> ctx
(** The context with the last RNS prime removed. Raises on a
    single-prime context. Deterministic: repeated calls agree with
    building a fresh context at [levels - 1]. *)

val mod_switch : ctx -> ciphertext -> ciphertext
(** [mod_switch small_ctx ct] rescales [ct] — which must live one level
    above [small_ctx] — to [small_ctx]'s modulus, preserving the
    plaintext mod t and dividing the noise by the dropped prime (plus a
    small additive term). Works at any ciphertext degree. *)

val project_secret_key : ctx -> secret_key -> secret_key
(** Re-express a secret key (small centered coefficients) in a
    lower-level context, for decrypting switched ciphertexts. *)

val noise_estimate_bits : ciphertext -> float
(** The tracked upper-bound estimate. *)

val noise_budget : ctx -> secret_key -> ciphertext -> int
(** Exact remaining noise budget in bits, measured with the secret key:
    positive means decryption is correct. *)

val ciphertext_bytes : ctx -> ciphertext -> int
(** Serialized size under this context's parameters. *)

val serialize : ciphertext -> bytes
(** Compact binary form (per-prime residue rows); used where the
    simulation actually ships ciphertexts through the mixnet. *)

val deserialize : ctx -> bytes -> ciphertext option

(** {2 Hooks for threshold decryption (lib/secrets)} *)

val secret_poly : secret_key -> Rq.t
(** The raw key polynomial s; exposed so committees can Shamir-share
    it. Never used by protocol code paths outside key ceremonies. *)

val secret_key_of_poly : ctx -> Rq.t -> secret_key

val linear_eval : ciphertext -> s:Rq.t -> Rq.t
(** [linear_eval ct ~s] computes c_0 + c_1 s for a degree-1 ciphertext
    (raises otherwise): the value a decryption committee reconstructs
    from partial shares. *)

val decode_noisy : ctx -> Rq.t -> Plaintext.t
(** Final decryption step: center mod q, reduce mod t. *)
