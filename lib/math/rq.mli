(** Elements of the polynomial ring R_q = Z_q[x]/(x^N + 1) in RNS form.

    An element stores, for every prime of the basis, a length-N residue
    array — either in the coefficient domain or in the NTT evaluation
    domain (double-CRT form), tracked by a {!repr} tag. Conversion
    between domains is lazy and in place: operations force the
    representation they need, cache it, and never change the
    mathematical value. All operations are functional with respect to
    that value (an input's *representation* may change; the ring
    element it denotes never does). *)

type t

type repr = Coeff | Eval
(** [Coeff]: rows hold polynomial coefficients. [Eval]: rows hold the
    negacyclic NTT of the coefficients (evaluation domain), in which
    ring multiplication is coordinate-wise. *)

val basis_of : t -> Rns.t

val repr_of : t -> repr
(** The domain the rows currently reside in. *)

val force_eval : t -> unit
(** Convert to the evaluation domain in place (no-op if already
    there). Use before sharing a value across parallel tasks so no two
    tasks race to convert it. *)

val force_coeff : t -> unit
(** Convert to the coefficient domain in place. *)

val zero : Rns.t -> t
val one : Rns.t -> t

val constant : Rns.t -> int -> t
(** The constant polynomial with the given (signed) integer value. *)

val monomial : Rns.t -> coeff:int -> exponent:int -> t
(** [monomial basis ~coeff ~exponent] is [coeff * x^exponent]; the
    exponent is reduced negacyclically ([x^N = -1]). *)

val of_centered_coeffs : Rns.t -> int array -> t
(** Lift an array of signed machine-int coefficients (length <= N,
    padded with zeros). *)

val to_bigint_coeffs : t -> Bigint.t array
(** CRT-reconstruct every coefficient, centered in [(-q/2, q/2\]].
    Cold path; does not change the input's resident representation
    (an Eval input is inverse-transformed into a scratch copy). *)

val residues : t -> int array array
(** Underlying per-prime rows, in the domain reported by {!repr_of}
    (do not mutate). Callers that need a specific domain must force it
    first. *)

val of_residues : ?repr:repr -> Rns.t -> int array array -> t
(** Adopt per-prime rows (copied), tagged with the domain they are in
    ([Coeff] by default). Lengths must match the basis. *)

val equal : t -> t -> bool
(** Mathematical equality: a mixed-representation pair is normalised
    to a common domain (forcing both operands to [Eval]) and the limb
    arrays are compared element by element. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
(** Linear ops work in either domain and preserve the operands'
    representation; a mixed pair meets in [Eval]. *)

val mul : t -> t -> t
(** Negacyclic product. Forces both operands to [Eval] (lazily, once
    per value) and multiplies coordinate-wise per limb; the result
    stays in [Eval]. *)

val dot : t array -> t array -> t
(** [dot a b = sum_i a.(i) * b.(i)], fused: each limb runs one
    multiply-accumulate pass per term into a single accumulator row.
    Forces every operand to [Eval]; the result is [Eval]. Used for the
    cross-term diagonals of ciphertext tensor products. *)

val mul_scalar : t -> int -> t
(** Multiply by a signed integer scalar (domain-agnostic; preserves
    representation). *)

val mul_scalar_residues : t -> int array -> t
(** Multiply by a scalar given directly by its per-prime residues (for
    scalars wider than a machine word, e.g. digit weights B^i in key
    switching). Domain-agnostic; preserves representation. *)

val random_uniform : Rns.t -> Mycelium_util.Rng.t -> t
(** Uniform element of R_q (independent uniform residues per prime,
    which is exactly uniform mod q by CRT). *)

val sample_ternary : Rns.t -> Mycelium_util.Rng.t -> t
(** Coefficients uniform in {-1, 0, 1}; the BGV secret-key
    distribution. *)

val sample_cbd : Rns.t -> eta:int -> Mycelium_util.Rng.t -> t
(** Centered binomial with parameter eta (variance eta/2): the error
    distribution, a standard stand-in for a discrete Gaussian. *)

val pp : Format.formatter -> t -> unit
(** Prints the first few reconstructed coefficients; for debugging. *)
