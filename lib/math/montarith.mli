(** Montgomery modular arithmetic with radix R = 2^62.

    Scalar specification for the {!Mont_backend} NTT kernels: the
    butterflies there hand-inline exactly the arithmetic exposed here,
    and the KAT / differential suites in [test/test_ringops.ml] pin
    these entry points against the {!Modarith} [mod]-based reference.

    The radix choice mirrors the Shoup quotient scale already used by
    {!Modarith.shoup_precompute}: with R = 2^62 and p < 2^30, every
    intermediate of the reduction fits OCaml's 63-bit native [int] once
    split into 31-bit halves (see DESIGN.md §11 for the derivation). *)

type ctx
(** Precomputed Montgomery constants for one modulus. *)

val r_bits : int
(** log2 of the Montgomery radix R; always 62. *)

val supports : int -> bool
(** [supports p] is true when [p] is odd and [2 < p < 2^30] — the
    precondition for every function below. 30-bit NTT primes from
    {!Ntt.find_primes} always qualify. *)

val precompute : int -> ctx
(** Derive the constants for a modulus (Newton–Hensel inversion of [p]
    mod 2^62). Raises [Invalid_argument] unless [supports p]. *)

val modulus : ctx -> int

val neg_p_inv : ctx -> int
(** [-p^-1 mod 2^62], the REDC companion constant. *)

val r_mod_p : ctx -> int
(** [R mod p]: the Montgomery image of 1. *)

val r2_mod_p : ctx -> int
(** [R^2 mod p], used to enter the Montgomery domain. *)

val reduce : ctx -> int -> int
(** [reduce c t] is [t * R^-1 mod p], reduced to [\[0, p)], for any
    [t] in [\[0, 2^62)] — including values straddling the top of the
    radix. Raises [Invalid_argument] outside that range. *)

val mul : ctx -> int -> int -> int
(** [mul c x y] is the Montgomery product [x*y*R^-1 mod p] of reduced
    operands. If [y] is a Montgomery-domain constant [w*R mod p], the
    result is the plain product [x*w mod p] — the trick the NTT
    twiddle tables exploit. *)

val to_mont : ctx -> int -> int
(** [to_mont c x = x * R mod p] for reduced [x]. *)

val of_mont : ctx -> int -> int
(** [of_mont c x = x * R^-1 mod p]; inverse of {!to_mont}. *)
