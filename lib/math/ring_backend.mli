(** Pluggable ring-kernel backends, selected per parameter profile.

    Every backend computes the same negacyclic transform from the same
    twiddle tables ({!Ntt.tables}) and reduces every butterfly output
    canonically, so results are bit-identical across backends — the
    property the cross-backend differential suite enforces.  The
    backend choice is a pure performance knob: it never appears in the
    wire format, and bases built on different backends interoperate.

    Selection precedence: an explicit [?backend] argument, then the
    {!with_backend} in-process override, then the
    [MYCELIUM_RING_BACKEND] environment variable, then the default
    policy (Montgomery wherever the modulus allows it, Reference
    otherwise).  A requested backend that cannot handle the modulus
    falls back to Reference. *)

type plan = {
  backend : string;  (** name of the backend that built this plan *)
  p : int;
  n : int;
  forward_into : src:int array -> dst:int array -> unit;
  inverse_into : src:int array -> dst:int array -> unit;
  pointwise_into : dst:int array -> int array -> int array -> unit;
  pointwise_acc : acc:int array -> int array -> int array -> unit;
}
(** Precomputed kernels for one (p, N) pair.  Contracts match the
    {!Ntt} entry points: [src == dst] allowed for the transforms,
    [dst] may alias an input for [pointwise_into]. *)

module type S = sig
  val name : string

  val available : p:int -> degree:int -> bool
  (** Can this backend run the given profile at all?  (Montgomery
      requires an odd modulus below 2^30; Reference accepts anything
      {!Ntt.make_plan} does.) *)

  val make_plan : p:int -> degree:int -> plan
end

module Reference : S
(** The Shoup-multiplier kernels of {!Ntt}, valid for any p < 2^31. *)

module Montgomery : S
(** Radix-4 Bigarray kernels with Montgomery reduction
    ({!Mont_backend}); requires p < 2^30. *)

val all : (module S) list
val names : string list

val of_name : string -> (module S) option
(** Case-insensitive lookup by {!S.name}. *)

val with_backend : string -> (unit -> 'a) -> 'a
(** [with_backend name f] runs [f] with every plan built during the
    call pinned to [name] (unless overridden by an explicit
    [?backend]).  Restores the previous override on exit; nests.
    Raises [Invalid_argument] for an unknown name. *)

val make_plan : ?backend:string -> p:int -> degree:int -> unit -> plan
(** Build a plan for the profile under the selection policy above.
    Raises [Invalid_argument] for an unknown [?backend] name. *)

(** Convenience wrappers mirroring the {!Ntt} entry points. *)

val forward : plan -> int array -> unit
val inverse : plan -> int array -> unit
val forward_into : plan -> src:int array -> dst:int array -> unit
val inverse_into : plan -> src:int array -> dst:int array -> unit
val pointwise : plan -> int array -> int array -> int array
val pointwise_into : plan -> dst:int array -> int array -> int array -> unit
val pointwise_acc : plan -> acc:int array -> int array -> int array -> unit

val multiply : plan -> int array -> int array -> int array
(** Negacyclic product of two coefficient-domain polynomials. *)
