type plan = {
  p : int;
  n : int;
  log_n : int;
  (* psi_pows.(i) = psi^(bitrev i), psi a primitive 2n-th root: merged
     twist + twiddle tables in the Cooley–Tukey / Gentleman–Sande pair
     of loops below (Longa–Naehrig layout). *)
  psi_pows : int array;
  inv_psi_pows : int array;
  n_inv : int;
  (* Shoup companion quotients floor(w * 2^62 / p) for every table
     entry, so the butterflies replace "* w mod p" (a hardware
     division) with two multiplies and a conditional subtraction. *)
  psi_shoup : int array;
  inv_psi_shoup : int array;
  n_inv_shoup : int;
}

let modulus t = t.p
let degree t = t.n

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let find_primes ~degree ~bits ~count =
  if bits > 31 then invalid_arg "Ntt.find_primes: bits must be <= 31";
  if not (is_power_of_two degree) then invalid_arg "Ntt.find_primes: degree not a power of two";
  let step = 2 * degree in
  let top = 1 lsl bits in
  (* Largest candidate of the form k*2N + 1 below 2^bits. *)
  let start = ((top - 2) / step * step) + 1 in
  let rec collect acc cand remaining =
    if remaining = 0 then List.rev acc
    else if cand <= step then failwith "Ntt.find_primes: exhausted candidates"
    else if Modarith.is_prime cand then collect (cand :: acc) (cand - step) (remaining - 1)
    else collect acc (cand - step) remaining
  in
  collect [] start count

let bit_reverse_index bits i =
  let r = ref 0 and v = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!v land 1);
    v := !v lsr 1
  done;
  !r

(* The twiddle tables are shared verbatim by every ring backend (the
   Shoup path below and the Montgomery Bigarray kernels in
   Mont_backend): bit-identical cross-backend results hinge on both
   reading the same psi powers in the same bit-reversed layout. *)
type tables = {
  t_p : int;
  t_n : int;
  t_log_n : int;
  t_psi_pows : int array;
  t_inv_psi_pows : int array;
  t_n_inv : int;
}

let tables ~p ~degree:n =
  if not (is_power_of_two n) then invalid_arg "Ntt.tables: degree not a power of two";
  if (p - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.tables: p <> 1 mod 2N";
  let log_n =
    let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
    go 0 1
  in
  let psi = Modarith.nth_root_of_unity p (2 * n) in
  let inv_psi = Modarith.inv p psi in
  let table root =
    let t = Array.make n 1 in
    let pow = Array.make n 1 in
    for i = 1 to n - 1 do
      pow.(i) <- Modarith.mul p pow.(i - 1) root
    done;
    for i = 0 to n - 1 do
      t.(i) <- pow.(bit_reverse_index log_n i)
    done;
    t
  in
  {
    t_p = p;
    t_n = n;
    t_log_n = log_n;
    t_psi_pows = table psi;
    t_inv_psi_pows = table inv_psi;
    t_n_inv = Modarith.inv p n;
  }

let make_plan ~p ~degree:n =
  let tb = tables ~p ~degree:n in
  let psi_pows = tb.t_psi_pows in
  let inv_psi_pows = tb.t_inv_psi_pows in
  let n_inv = tb.t_n_inv in
  {
    p;
    n;
    log_n = tb.t_log_n;
    psi_pows;
    inv_psi_pows;
    n_inv;
    psi_shoup = Array.map (Modarith.shoup_precompute p) psi_pows;
    inv_psi_shoup = Array.map (Modarith.shoup_precompute p) inv_psi_pows;
    n_inv_shoup = Modarith.shoup_precompute p n_inv;
  }

(* The butterflies below inline Modarith.shoup_mul by hand: the OCaml
   compiler does not reliably inline across modules without flambda,
   and these two loops are the hottest code in the repo.  The Shoup
   product of a reduced x by table constant w with companion w' is
     q = floor(x * w' / 2^62)   (split so nothing exceeds 63 bits)
     r = x*w - q*p ∈ [0, p]     (one conditional subtraction)
   — see Modarith.shoup_mul and DESIGN.md §9 for the bounds. *)

(* Cooley–Tukey decimation-in-time with the psi powers folded into the
   twiddles; performs the negacyclic twist implicitly.  [forward_from]
   reads the first stage from [src] and writes [dst] (which may be the
   same array), then finishes in place on [dst]: the fused first stage
   is what lets callers keep [src] intact without a separate
   Array.copy pass. *)
let forward_from t src dst =
  let p = t.p and n = t.n in
  if Array.length src <> n || Array.length dst <> n then
    invalid_arg "Ntt.forward: wrong length";
  if n = 1 then (if dst != src then dst.(0) <- src.(0))
  else begin
    (* Stage m = 1: one butterfly span covering the whole array. *)
    let len = n / 2 in
    let w = t.psi_pows.(1) in
    let whi = t.psi_shoup.(1) lsr 31 and wlo = t.psi_shoup.(1) land 0x7FFFFFFF in
    for j = 0 to len - 1 do
      let u = src.(j) in
      let x = src.(j + len) in
      let q = ((x * whi) + ((x * wlo) lsr 31)) lsr 31 in
      let v = (x * w) - (q * p) in
      let v = if v >= p then v - p else v in
      let s = u + v in
      dst.(j) <- (if s >= p then s - p else s);
      let d = u - v in
      dst.(j + len) <- (if d < 0 then d + p else d)
    done;
    (* Remaining stages run in place on dst. *)
    let m = ref 2 and len = ref (n / 4) in
    while !len >= 1 do
      let m_v = !m and len_v = !len in
      for i = 0 to m_v - 1 do
        let w = t.psi_pows.(m_v + i) in
        let w' = t.psi_shoup.(m_v + i) in
        let whi = w' lsr 31 and wlo = w' land 0x7FFFFFFF in
        let j1 = 2 * i * len_v in
        for j = j1 to j1 + len_v - 1 do
          let u = dst.(j) in
          let x = dst.(j + len_v) in
          let q = ((x * whi) + ((x * wlo) lsr 31)) lsr 31 in
          let v = (x * w) - (q * p) in
          let v = if v >= p then v - p else v in
          let s = u + v in
          dst.(j) <- (if s >= p then s - p else s);
          let d = u - v in
          dst.(j + len_v) <- (if d < 0 then d + p else d)
        done
      done;
      m := m_v * 2;
      len := len_v / 2
    done
  end

let forward t a = forward_from t a a
let forward_into t ~src ~dst = forward_from t src dst

(* Gentleman–Sande decimation-in-frequency inverse, with the inverse
   twist folded in, followed by scaling by n^-1.  Mirror structure:
   the first stage (m = n/2, len = 1) reads [src] and writes [dst],
   the rest runs in place. *)
let inverse_from t src dst =
  let p = t.p and n = t.n in
  if Array.length src <> n || Array.length dst <> n then
    invalid_arg "Ntt.inverse: wrong length";
  let ninv = t.n_inv in
  let nhi = t.n_inv_shoup lsr 31 and nlo = t.n_inv_shoup land 0x7FFFFFFF in
  if n = 1 then begin
    let x = src.(0) in
    let q = ((x * nhi) + ((x * nlo) lsr 31)) lsr 31 in
    let r = (x * ninv) - (q * p) in
    dst.(0) <- (if r >= p then r - p else r)
  end
  else begin
    (* Stage m = n/2, len = 1: adjacent pairs, reads src, writes dst. *)
    let m_v = n / 2 in
    for i = 0 to m_v - 1 do
      let w = t.inv_psi_pows.(m_v + i) in
      let w' = t.inv_psi_shoup.(m_v + i) in
      let whi = w' lsr 31 and wlo = w' land 0x7FFFFFFF in
      let j = 2 * i in
      let u = src.(j) in
      let v = src.(j + 1) in
      let s = u + v in
      dst.(j) <- (if s >= p then s - p else s);
      let d = u - v in
      let x = if d < 0 then d + p else d in
      let q = ((x * whi) + ((x * wlo) lsr 31)) lsr 31 in
      let r = (x * w) - (q * p) in
      dst.(j + 1) <- (if r >= p then r - p else r)
    done;
    let m = ref (n / 4) and len = ref 2 in
    while !m >= 1 do
      let m_v = !m and len_v = !len in
      for i = 0 to m_v - 1 do
        let w = t.inv_psi_pows.(m_v + i) in
        let w' = t.inv_psi_shoup.(m_v + i) in
        let whi = w' lsr 31 and wlo = w' land 0x7FFFFFFF in
        let j1 = 2 * i * len_v in
        for j = j1 to j1 + len_v - 1 do
          let u = dst.(j) in
          let v = dst.(j + len_v) in
          let s = u + v in
          dst.(j) <- (if s >= p then s - p else s);
          let d = u - v in
          let x = if d < 0 then d + p else d in
          let q = ((x * whi) + ((x * wlo) lsr 31)) lsr 31 in
          let r = (x * w) - (q * p) in
          dst.(j + len_v) <- (if r >= p then r - p else r)
        done
      done;
      m := m_v / 2;
      len := len_v * 2
    done;
    for i = 0 to n - 1 do
      let x = dst.(i) in
      let q = ((x * nhi) + ((x * nlo) lsr 31)) lsr 31 in
      let r = (x * ninv) - (q * p) in
      dst.(i) <- (if r >= p then r - p else r)
    done
  end

let inverse t a = inverse_from t a a
let inverse_into t ~src ~dst = inverse_from t src dst

let pointwise_into t ~dst a b =
  let n = t.n and p = t.p in
  if Array.length a <> n || Array.length b <> n || Array.length dst <> n then
    invalid_arg "Ntt.pointwise: wrong length";
  for i = 0 to n - 1 do
    dst.(i) <- a.(i) * b.(i) mod p
  done

let pointwise t a b =
  let dst = Array.make t.n 0 in
  pointwise_into t ~dst a b;
  dst

let pointwise_acc t ~acc a b =
  let n = t.n and p = t.p in
  if Array.length a <> n || Array.length b <> n || Array.length acc <> n then
    invalid_arg "Ntt.pointwise_acc: wrong length";
  for i = 0 to n - 1 do
    let m = a.(i) * b.(i) mod p in
    let s = acc.(i) + m in
    acc.(i) <- (if s >= p then s - p else s)
  done

let multiply t a b =
  let n = t.n in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Ntt.multiply: wrong length";
  let fa = Array.make n 0 and fb = Array.make n 0 in
  forward_from t a fa;
  forward_from t b fb;
  pointwise_into t ~dst:fa fa fb;
  inverse t fa;
  fa

let multiply_naive ~p a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Ntt.multiply_naive: length mismatch";
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0 then
      for j = 0 to n - 1 do
        if b.(j) <> 0 then begin
          let prod = a.(i) * b.(j) mod p in
          let k = i + j in
          if k < n then out.(k) <- Modarith.add p out.(k) prod
          else out.(k - n) <- Modarith.sub p out.(k - n) prod
        end
      done
  done;
  out
