module Rng = Mycelium_util.Rng

(* Sign-magnitude representation. [mag] is little-endian with 26-bit
   limbs and no trailing zero limbs; zero is { sign = 0; mag = [||] }.
   Invariant: sign = 0 iff mag is empty, otherwise sign is +1 or -1. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int v =
  if v = 0 then zero
  else begin
    let sign = if v < 0 then -1 else 1 in
    let v = abs v in
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
    let n = count 0 v in
    let mag = Array.make n 0 in
    let rec fill i v =
      if v <> 0 then begin
        mag.(i) <- v land limb_mask;
        fill (i + 1) (v lsr limb_bits)
      end
    in
    fill 0 v;
    { sign; mag }
  end

let one = of_int 1
let two = of_int 2

let sign t = t.sign
let is_zero t = t.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Int.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

(* lint: allow poly-compare — Bigint's own typed compare, shadowing Stdlib's *)
let equal a b = compare a b = 0

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  out

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        (* ai * b.(j) <= (2^26-1)^2 < 2^52; adding out and carry keeps
           the accumulator below 2^53, well inside the native int. *)
        let v = (ai * b.(j)) + out.(i + j) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    end
  done;
  out

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a v = mul a (of_int v)
let add_int a v = add a (of_int v)

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + bits 0 top
  end

let testbit t i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr off) land 1 = 1

let shift_left t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t.mag in
    let out = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = t.mag.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize t.sign out
  end

let shift_right t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length t.mag in
    if limbs >= n then zero
    else begin
      let m = n - limbs in
      let out = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = t.mag.(i + limbs) lsr bits in
        let hi = if bits > 0 && i + limbs + 1 < n then (t.mag.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        out.(i) <- lo lor hi
      done;
      normalize t.sign out
    end
  end

(* Knuth TAOCP vol.2 Algorithm D on 26-bit limbs. Returns magnitudes. *)
let divmod_mag u v =
  let lv = Array.length v in
  assert (lv > 0);
  if compare_mag u v < 0 then ([| 0 |], Array.copy u)
  else if lv = 1 then begin
    (* Short division by a single limb. *)
    let d = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let r = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor u.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (q, [| !r |])
  end
  else begin
    (* D1: normalize so the top limb of v is >= base/2. *)
    let rec shift_of acc v = if v >= base / 2 then acc else shift_of (acc + 1) (v lsl 1) in
    let s = shift_of 0 v.(lv - 1) in
    let shl a k len =
      (* Shift magnitude a left by k (<26) bits into an array of given length. *)
      let out = Array.make len 0 in
      let la = Array.length a in
      for i = 0 to la - 1 do
        let x = a.(i) lsl k in
        out.(i) <- out.(i) lor (x land limb_mask);
        if i + 1 < len then out.(i + 1) <- x lsr limb_bits
      done;
      out
    in
    let lu = Array.length u in
    let un = shl u s (lu + 1) in
    let vn = shl v s lv in
    let m = lu - lv in
    let q = Array.make (m + 1) 0 in
    let v_top = vn.(lv - 1) and v_second = vn.(lv - 2) in
    for j = m downto 0 do
      (* D3: estimate qhat from the top two limbs of the current window. *)
      let num = (un.(j + lv) lsl limb_bits) lor un.(j + lv - 1) in
      let qhat = ref (num / v_top) and rhat = ref (num mod v_top) in
      let continue_adjust = ref true in
      while !continue_adjust do
        if !qhat >= base || !qhat * v_second > (!rhat lsl limb_bits) lor un.(j + lv - 2) then begin
          decr qhat;
          rhat := !rhat + v_top;
          if !rhat >= base then continue_adjust := false
        end
        else continue_adjust := false
      done;
      (* D4: multiply-subtract qhat * vn from the window. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to lv - 1 do
        let prod = (!qhat * vn.(i)) + !carry in
        carry := prod lsr limb_bits;
        let d = un.(i + j) - (prod land limb_mask) - !borrow in
        if d < 0 then begin
          un.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = un.(j + lv) - !carry - !borrow in
      if d < 0 then begin
        (* D6: qhat was one too large; add back. *)
        un.(j + lv) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to lv - 1 do
          let s2 = un.(i + j) + vn.(i) + !carry2 in
          un.(i + j) <- s2 land limb_mask;
          carry2 := s2 lsr limb_bits
        done;
        un.(j + lv) <- (un.(j + lv) + !carry2) land limb_mask
      end
      else un.(j + lv) <- d;
      q.(j) <- !qhat
    done;
    (* D8: denormalize the remainder. *)
    let r = Array.make lv 0 in
    for i = 0 to lv - 1 do
      let lo = un.(i) lsr s in
      let hi = if s > 0 && i + 1 <= lv then (un.(i + 1) lsl (limb_bits - s)) land limb_mask else 0 in
      r.(i) <- lo lor hi
    done;
    (q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let rem_int a p =
  if p <= 0 || p >= 1 lsl 31 then invalid_arg "Bigint.rem_int: modulus out of range";
  (* Horner over limbs: the accumulator stays below 2^31 * 2^26. *)
  let r = ref 0 in
  for i = Array.length a.mag - 1 downto 0 do
    r := (((!r lsl limb_bits) lor a.mag.(i))) mod p
  done;
  if a.sign < 0 && !r <> 0 then p - !r else !r

let to_int_opt t =
  if num_bits t > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (if t.sign < 0 then - !v else !v)
  end

let to_int t =
  match to_int_opt t with
  | Some v -> v
  | None -> failwith "Bigint.to_int: value too large"

let to_float t =
  let acc = ref 0. in
  for i = Array.length t.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  if t.sign < 0 then -. !acc else !acc

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go one b e

let mod_pow base_v e m =
  if m.sign <= 0 then invalid_arg "Bigint.mod_pow: modulus must be positive";
  if e.sign < 0 then invalid_arg "Bigint.mod_pow: negative exponent";
  let nbits = num_bits e in
  let result = ref one and b = ref (erem base_v m) in
  for i = 0 to nbits - 1 do
    if testbit e i then result := erem (mul !result !b) m;
    b := erem (mul !b !b) m
  done;
  !result

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let mod_inv a m =
  (* Extended Euclid on (a mod m, m). *)
  let rec go old_r r old_s s =
    if is_zero r then (old_r, old_s) else begin
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s))
    end
  in
  let g, x = go (erem a m) m one zero in
  if not (equal g one) then invalid_arg "Bigint.mod_inv: not invertible";
  erem x m

let of_string s =
  let neg_sign = String.length s > 0 && s.[0] = '-' in
  let start = if neg_sign || (String.length s > 0 && s.[0] = '+') then 1 else 0 in
  if String.length s = start then invalid_arg "Bigint.of_string: empty";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = int_of_float (10. ** float_of_int !chunk_len) in
      acc := add (mul_int !acc scale) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  String.iteri
    (fun i c ->
      if i >= start then begin
        match c with
        | '0' .. '9' ->
          chunk := (!chunk * 10) + (Char.code c - Char.code '0');
          incr chunk_len;
          if !chunk_len = 9 then flush ()
        | '_' -> ()
        | _ -> invalid_arg "Bigint.of_string: bad digit"
      end)
    s;
  flush ();
  if neg_sign then neg !acc else !acc

let to_string t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let chunks = ref [] in
    let billion = of_int 1_000_000_000 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v billion in
        chunks := to_int r :: !chunks;
        go q
      end
    in
    go (abs t);
    if t.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> ()
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_bytes_be b =
  let acc = ref zero in
  Bytes.iter (fun c -> acc := add_int (mul_int !acc 256) (Char.code c)) b;
  !acc

let to_bytes_be t =
  let nbytes = (num_bits t + 7) / 8 in
  let out = Bytes.create nbytes in
  let v = ref (abs t) in
  for i = nbytes - 1 downto 0 do
    let q, r = divmod !v (of_int 256) in
    Bytes.set_uint8 out i (to_int r);
    v := q
  done;
  out

let of_hex s =
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add_int (mul_int !acc 16) (Char.code c - Char.code '0')
      | 'a' .. 'f' -> acc := add_int (mul_int !acc 16) (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> acc := add_int (mul_int !acc 16) (Char.code c - Char.code 'A' + 10)
      | '_' -> ()
      | _ -> invalid_arg "Bigint.of_hex: bad digit")
    s;
  !acc

let random rng bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random: bound must be positive";
  let bits = num_bits bound in
  let nlimbs = (bits + limb_bits - 1) / limb_bits in
  let top_bits = bits - ((nlimbs - 1) * limb_bits) in
  let top_mask = (1 lsl top_bits) - 1 in
  (* Rejection sampling: uniform among bit-length-bounded values. *)
  let rec draw () =
    let mag = Array.init nlimbs (fun _ -> Rng.bits62 rng land limb_mask) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land top_mask;
    let v = normalize 1 mag in
    (* lint: allow poly-compare — Bigint's own typed compare, shadowing Stdlib's *)
    if compare v bound < 0 then v else draw ()
  in
  draw ()

let random_bits rng bits =
  if bits <= 0 then invalid_arg "Bigint.random_bits";
  let v = random rng (shift_left one (bits - 1)) in
  add v (shift_left one (bits - 1))

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97 ]

let is_probable_prime ?(rounds = 24) rng n =
  if n.sign <= 0 then false
  else
    match to_int_opt n with
    | Some v when v < 1 lsl 31 -> Modarith.is_prime v
    | _ ->
      let has_small_factor =
        List.exists (fun p -> is_zero (rem n (of_int p))) small_primes
      in
      if has_small_factor then false
      else begin
        let n1 = sub n one in
        let r = ref 0 and d = ref n1 in
        while not (testbit !d 0) do
          d := shift_right !d 1;
          incr r
        done;
        let witness a =
          let x = ref (mod_pow a !d n) in
          if equal !x one || equal !x n1 then false
          else begin
            let composite = ref true in
            (try
               for _ = 1 to !r - 1 do
                 x := erem (mul !x !x) n;
                 if equal !x n1 then begin
                   composite := false;
                   raise Exit
                 end
               done
             with Exit -> ());
            !composite
          end
        in
        let rec rounds_left k =
          if k = 0 then true
          else begin
            let a = add (random rng (sub n (of_int 3))) two in
            if witness a then false else rounds_left (k - 1)
          end
        in
        rounds_left rounds
      end

let random_prime rng ~bits =
  let rec try_candidate () =
    let c = random_bits rng bits in
    (* Force odd. *)
    let c = if testbit c 0 then c else add c one in
    if Int.equal (num_bits c) bits && is_probable_prime rng c then c else try_candidate ()
  in
  try_candidate ()

let random_safe_prime rng ~bits =
  let rec go () =
    let q = random_prime rng ~bits:(bits - 1) in
    let p = add (shift_left q 1) one in
    if is_probable_prime rng p then (p, q) else go ()
  in
  go ()

let pp fmt t = Format.pp_print_string fmt (to_string t)
