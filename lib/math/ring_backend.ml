(* Pluggable ring-kernel backends.

   A plan is a record of closures over one (p, N) pair: the four
   primitives Rq needs to move limbs between the coefficient and
   evaluation domains and to multiply evaluation-resident rows.  Two
   backends implement it — Reference (the Shoup kernels in Ntt) and
   Montgomery (the radix-4 Bigarray kernels in Mont_backend) — and
   both read the same twiddle tables (Ntt.tables), so their outputs
   are bit-identical; the choice is purely a performance knob and is
   deliberately invisible to serialization, secrets and query layers.

   Selection per parameter profile: an in-process override
   (with_backend) beats the MYCELIUM_RING_BACKEND environment
   variable, which beats the default policy (Montgomery wherever the
   modulus allows it, i.e. p < 2^30; Reference otherwise).  A
   requested backend that cannot handle the modulus falls back to
   Reference rather than failing: every backend accepts the same
   inputs and produces the same outputs, so availability is the only
   correctness concern. *)

type plan = {
  backend : string;
  p : int;
  n : int;
  forward_into : src:int array -> dst:int array -> unit;
  inverse_into : src:int array -> dst:int array -> unit;
  pointwise_into : dst:int array -> int array -> int array -> unit;
  pointwise_acc : acc:int array -> int array -> int array -> unit;
}

module type S = sig
  val name : string

  val available : p:int -> degree:int -> bool
  (** Can this backend run the given profile at all? *)

  val make_plan : p:int -> degree:int -> plan
end

module Reference : S = struct
  let name = "reference"
  let available ~p:_ ~degree:_ = true

  let make_plan ~p ~degree =
    let t = Ntt.make_plan ~p ~degree in
    {
      backend = name;
      p;
      n = degree;
      forward_into = (fun ~src ~dst -> Ntt.forward_into t ~src ~dst);
      inverse_into = (fun ~src ~dst -> Ntt.inverse_into t ~src ~dst);
      pointwise_into = (fun ~dst a b -> Ntt.pointwise_into t ~dst a b);
      pointwise_acc = (fun ~acc a b -> Ntt.pointwise_acc t ~acc a b);
    }
end

module Montgomery : S = struct
  let name = "montgomery"
  let available ~p ~degree:_ = Mont_backend.available ~p

  let make_plan ~p ~degree =
    let t = Mont_backend.make_plan ~p ~degree in
    {
      backend = name;
      p;
      n = degree;
      forward_into = (fun ~src ~dst -> Mont_backend.forward_into t ~src ~dst);
      inverse_into = (fun ~src ~dst -> Mont_backend.inverse_into t ~src ~dst);
      pointwise_into = (fun ~dst a b -> Mont_backend.pointwise_into t ~dst a b);
      pointwise_acc = (fun ~acc a b -> Mont_backend.pointwise_acc t ~acc a b);
    }
end

let all = [ (module Montgomery : S); (module Reference : S) ]

let of_name name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun (module B : S) -> B.name = name) all

let names = List.map (fun (module B : S) -> B.name) all

let checked_of_name ~who name =
  match of_name name with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "%s: unknown ring backend %S (expected one of: %s)" who name
         (String.concat ", " names))

(* In-process override, used by the cross-backend acceptance sweeps.
   Atomic for domain-safety, though tests only flip it from the main
   domain; nested with_backend restores the outer choice on exit. *)
let override : string option Atomic.t = Atomic.make None

let env_choice =
  lazy
    (match Sys.getenv_opt "MYCELIUM_RING_BACKEND" with
    | None | Some "" -> None
    | Some s ->
      let (module B : S) = checked_of_name ~who:"MYCELIUM_RING_BACKEND" s in
      Some B.name)

let with_backend name f =
  let (module B : S) = checked_of_name ~who:"Ring_backend.with_backend" name in
  let saved = Atomic.get override in
  Atomic.set override (Some B.name);
  Fun.protect ~finally:(fun () -> Atomic.set override saved) f

let requested ?backend () =
  match backend with
  | Some s ->
    let (module B : S) = checked_of_name ~who:"Ring_backend.make_plan" s in
    Some B.name
  | None -> (
    match Atomic.get override with
    | Some s -> Some s
    | None -> Lazy.force env_choice)

let resolve ?backend ~p ~degree () : (module S) =
  match requested ?backend () with
  | Some s -> (
    let (module B : S) = checked_of_name ~who:"Ring_backend.make_plan" s in
    if B.available ~p ~degree then (module B) else (module Reference))
  | None ->
    if Montgomery.available ~p ~degree then (module Montgomery) else (module Reference)

let make_plan ?backend ~p ~degree () =
  let (module B : S) = resolve ?backend ~p ~degree () in
  B.make_plan ~p ~degree

(* Convenience wrappers mirroring the Ntt entry points; tests and the
   bench table drive backends through these. *)
let forward pl a = pl.forward_into ~src:a ~dst:a
let inverse pl a = pl.inverse_into ~src:a ~dst:a
let forward_into pl ~src ~dst = pl.forward_into ~src ~dst
let inverse_into pl ~src ~dst = pl.inverse_into ~src ~dst
let pointwise_into pl ~dst a b = pl.pointwise_into ~dst a b
let pointwise_acc pl ~acc a b = pl.pointwise_acc ~acc a b

let pointwise pl a b =
  let dst = Array.make pl.n 0 in
  pl.pointwise_into ~dst a b;
  dst

let multiply pl a b =
  let n = pl.n in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg "Ring_backend.multiply: wrong length";
  let fa = Array.make n 0 and fb = Array.make n 0 in
  pl.forward_into ~src:a ~dst:fa;
  pl.forward_into ~src:b ~dst:fb;
  pl.pointwise_into ~dst:fa fa fb;
  pl.inverse_into ~src:fa ~dst:fa;
  fa
