type t = {
  primes : int array;
  plans : Ring_backend.plan array;
  degree : int;
  q : Bigint.t;
  (* crt_factor.(i) = (q / p_i) * ((q / p_i)^-1 mod p_i): summing
     residue_i * crt_factor.(i) and reducing mod q reconstructs. *)
  crt_factor : Bigint.t array;
  half_q : Bigint.t;
}

let primes t = t.primes

let equal a b =
  Int.equal a.degree b.degree
  && Int.equal (Array.length a.primes) (Array.length b.primes)
  && Array.for_all2 Int.equal a.primes b.primes
let plans t = t.plans
let degree t = t.degree
let level_count t = Array.length t.primes
let modulus t = t.q
let modulus_bits t = Bigint.num_bits t.q

let backend_name t = t.plans.(0).Ring_backend.backend

let make ?backend ~primes ~degree () =
  let primes = Array.of_list primes in
  let n = Array.length primes in
  if n = 0 then invalid_arg "Rns.make: empty basis";
  let distinct = Array.to_list primes |> List.sort_uniq Int.compare |> List.length in
  if distinct <> n then invalid_arg "Rns.make: duplicate primes";
  let plans = Array.map (fun p -> Ring_backend.make_plan ?backend ~p ~degree ()) primes in
  let q = Array.fold_left (fun acc p -> Bigint.mul acc (Bigint.of_int p)) Bigint.one primes in
  let crt_factor =
    Array.map
      (fun p ->
        let m_i = Bigint.div q (Bigint.of_int p) in
        let inv = Modarith.inv p (Bigint.rem_int m_i p) in
        Bigint.mul m_i (Bigint.of_int inv))
      primes
  in
  { primes; plans; degree; q; crt_factor; half_q = Bigint.shift_right q 1 }

let standard ?backend ~degree ~prime_bits ~levels () =
  make ?backend ~primes:(Ntt.find_primes ~degree ~bits:prime_bits ~count:levels) ~degree ()

let to_bigint t residues =
  let acc = ref Bigint.zero in
  Array.iteri
    (fun i r -> acc := Bigint.add !acc (Bigint.mul_int t.crt_factor.(i) r))
    residues;
  Bigint.erem !acc t.q

let to_bigint_centered t residues =
  let v = to_bigint t residues in
  if Bigint.compare v t.half_q > 0 then Bigint.sub v t.q else v

(* Limb-major CRT reconstruction of a whole residue matrix
   (rows.(limb).(coeff)): one pass per limb accumulating
   crt_factor.(j) * rows.(j).(i) into per-coefficient accumulators,
   then a single reduce-and-center pass.  Same accumulation order
   (ascending limb index) as folding to_bigint_centered over columns,
   so the results are bit-identical to the column-major loop while
   touching each row sequentially. *)
let to_bigint_rows_centered t rows =
  if Array.length rows <> Array.length t.primes then
    invalid_arg "Rns.to_bigint_rows_centered: wrong number of rows";
  let n = t.degree in
  let acc = Array.make n Bigint.zero in
  Array.iteri
    (fun j row ->
      if Array.length row <> n then
        invalid_arg "Rns.to_bigint_rows_centered: wrong row length";
      let f = t.crt_factor.(j) in
      for i = 0 to n - 1 do
        acc.(i) <- Bigint.add acc.(i) (Bigint.mul_int f row.(i))
      done)
    rows;
  Array.map
    (fun v ->
      let v = Bigint.erem v t.q in
      if Bigint.compare v t.half_q > 0 then Bigint.sub v t.q else v)
    acc

let of_bigint t x = Array.map (fun p -> Bigint.rem_int x p) t.primes

let of_int t x = Array.map (fun p -> Modarith.reduce p x) t.primes

(* Modulus switching happens on every multiplicative level, so this must
   not pay for NTT planning again: the surviving primes keep the parent's
   plans (physically shared); only the CRT data tied to q changes. *)
let drop_last t =
  let n = Array.length t.primes in
  if n < 2 then invalid_arg "Rns.drop_last: single-prime basis";
  let primes = Array.sub t.primes 0 (n - 1) in
  let plans = Array.sub t.plans 0 (n - 1) in
  let q = Bigint.div t.q (Bigint.of_int t.primes.(n - 1)) in
  let crt_factor =
    Array.map
      (fun p ->
        let m_i = Bigint.div q (Bigint.of_int p) in
        let inv = Modarith.inv p (Bigint.rem_int m_i p) in
        Bigint.mul m_i (Bigint.of_int inv))
      primes
  in
  { primes; plans; degree = t.degree; q; crt_factor; half_q = Bigint.shift_right q 1 }
