module Rng = Mycelium_util.Rng
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs

(* Hot-op observability (DESIGN.md §8): counters of per-limb ring
   multiplies and domain transforms, plus one sampled span per 64 ring
   multiplications so a trace shows where ring time goes without a
   span per call.  The call sites guard on [Obs.enabled] so the
   disabled path costs one branch and allocates nothing. *)
let m_limb_ntt_muls = Obs.Metrics.counter Obs.Names.rq_limb_ntt_muls
let m_limb_transforms = Obs.Metrics.counter Obs.Names.rq_limb_transforms
let mul_sampler = Obs.sampler ~every:64
let dot_sampler = Obs.sampler ~every:64

type repr = Coeff | Eval

(* An element is a mathematical value of R_q; which domain its residue
   rows currently live in is a cache concern, not part of the value.
   The representation tag and the rows travel together in one
   immutable record behind a single mutable field, so a lazy
   conversion is one atomic pointer write: a concurrent reader sees
   either the old state or the new one, never a torn mix, and both
   denote the same ring element.  Conversion allocates fresh rows —
   it never mutates arrays a previously observed state points to. *)
type state = { repr : repr; rows : int array array }

type t = { basis : Rns.t; mutable st : state }

(* Per-limb parallelism: each RNS row is independent, so limb ops map
   cleanly onto the domain pool.  Dispatch costs a few microseconds, so
   only ship work out once a limb is big enough to amortise it: NTT
   transforms (O(n log n) with a large constant) from degree 512, plain
   pointwise passes only from degree 4096.  Results are written by limb
   index, so the output is identical at any domain count. *)
let ntt_par_degree = 512
let pointwise_par_degree = 4096

let pmapi ~min_degree basis f arr =
  if Rns.degree basis >= min_degree && Array.length arr > 1 then
    Pool.mapi_array (Pool.default ()) f arr
  else Array.mapi f arr

let basis_of t = t.basis

let repr_of t = t.st.repr

(* Lazy domain conversion.  The snapshot-then-swap discipline makes a
   race between two forcers benign: both compute identical rows from
   the same snapshot and the last single-word write wins.  The hot
   pipeline additionally pre-forces every value that is shared across
   pool tasks (public keys, relin key digits, ciphertext components
   before the cross-term fan-out), so in practice conversions happen
   once, outside parallel regions. *)
let convert target t =
  let st = t.st in
  if st.repr <> target then begin
    if Obs.enabled () then Obs.Metrics.add m_limb_transforms (Array.length st.rows);
    let plans = Rns.plans t.basis in
    let rows =
      pmapi ~min_degree:ntt_par_degree t.basis
        (fun j plan ->
          let src = st.rows.(j) in
          let dst = Array.make (Array.length src) 0 in
          (match target with
          | Eval -> Ring_backend.forward_into plan ~src ~dst
          | Coeff -> Ring_backend.inverse_into plan ~src ~dst);
          dst)
        plans
    in
    t.st <- { repr = target; rows }
  end

let force_eval t = convert Eval t
let force_coeff t = convert Coeff t

let zero basis =
  let n = Rns.degree basis in
  {
    basis;
    st = { repr = Coeff; rows = Array.map (fun _ -> Array.make n 0) (Rns.primes basis) };
  }

let of_centered_coeffs basis coeffs =
  let n = Rns.degree basis in
  if Array.length coeffs > n then invalid_arg "Rq.of_centered_coeffs: too many coefficients";
  let rows =
    Array.map
      (fun p ->
        let row = Array.make n 0 in
        Array.iteri (fun i c -> row.(i) <- Modarith.reduce p c) coeffs;
        row)
      (Rns.primes basis)
  in
  { basis; st = { repr = Coeff; rows } }

let constant basis v = of_centered_coeffs basis [| v |]

let one basis = constant basis 1

let monomial basis ~coeff ~exponent =
  let n = Rns.degree basis in
  if exponent < 0 then invalid_arg "Rq.monomial: negative exponent";
  (* x^N = -1, so reduce the exponent mod 2N with a sign flip. *)
  let e = exponent mod (2 * n) in
  let e, coeff = if e >= n then (e - n, -coeff) else (e, coeff) in
  let coeffs = Array.make (e + 1) 0 in
  coeffs.(e) <- coeff;
  of_centered_coeffs basis coeffs

let residues t = t.st.rows

let of_residues ?(repr = Coeff) basis rows =
  let n = Rns.degree basis in
  let k = Array.length (Rns.primes basis) in
  if Array.length rows <> k then invalid_arg "Rq.of_residues: wrong number of rows";
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Rq.of_residues: wrong row length") rows;
  { basis; st = { repr; rows = Array.map Array.copy rows } }

(* Coefficient-domain rows without changing [t]'s resident
   representation: decryption and noise probes must not flip a shared
   ciphertext back to Coeff behind the pipeline's back. *)
let coeff_rows_snapshot t =
  let st = t.st in
  match st.repr with
  | Coeff -> st.rows
  | Eval ->
    if Obs.enabled () then Obs.Metrics.add m_limb_transforms (Array.length st.rows);
    let plans = Rns.plans t.basis in
    pmapi ~min_degree:ntt_par_degree t.basis
      (fun j plan ->
        let src = st.rows.(j) in
        let dst = Array.make (Array.length src) 0 in
        Ring_backend.inverse_into plan ~src ~dst;
        dst)
      plans

let to_bigint_coeffs t = Rns.to_bigint_rows_centered t.basis (coeff_rows_snapshot t)

(* Structural comparison must not see the representation: normalise a
   mixed pair to the evaluation domain (the transform is a bijection,
   so equality of rows is preserved) and compare the limb arrays
   element by element. *)
let rows_equal ra rb =
  Array.length ra = Array.length rb
  && begin
    let ok = ref true in
    Array.iteri
      (fun j row ->
        let rowb = rb.(j) in
        if Array.length row <> Array.length rowb then ok := false
        else
          for i = 0 to Array.length row - 1 do
            if row.(i) <> rowb.(i) then ok := false
          done)
      ra;
    !ok
  end

let equal a b =
  Rns.equal a.basis b.basis
  && begin
    if a.st.repr <> b.st.repr then begin
      force_eval a;
      force_eval b
    end;
    rows_equal a.st.rows b.st.rows
  end

(* Pointwise binary ops are domain-agnostic (the NTT is linear, and
   scaling by a constant residue is coordinate-wise in both domains):
   run them in whatever domain the operands already share; a mixed
   pair meets in the evaluation domain, the pipeline steady state. *)
let align a b =
  if a.st.repr <> b.st.repr then begin
    force_eval a;
    force_eval b
  end;
  (a.st, b.st)

let map2 f a b =
  if not (Rns.equal a.basis b.basis) then invalid_arg "Rq: basis mismatch";
  let sa, sb = align a b in
  let primes = Rns.primes a.basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j p ->
        let ra = sa.rows.(j) and rb = sb.rows.(j) in
        Array.init (Array.length ra) (fun i -> f p ra.(i) rb.(i)))
      primes
  in
  { basis = a.basis; st = { repr = sa.repr; rows } }

let add a b = map2 Modarith.add a b
let sub a b = map2 Modarith.sub a b

let neg a =
  let sa = a.st in
  let primes = Rns.primes a.basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j row -> Array.map (Modarith.neg primes.(j)) row)
      sa.rows
  in
  { basis = a.basis; st = { repr = sa.repr; rows } }

(* Multiplication is where the representation pays off: force both
   operands into the evaluation domain (lazily, once per value) and
   the product is a single pointwise pass per limb.  The result stays
   in Eval — no inverse transform until some consumer actually needs
   coefficients. *)
let mul_impl a b =
  if not (Rns.equal a.basis b.basis) then invalid_arg "Rq.mul: basis mismatch";
  force_eval a;
  force_eval b;
  let sa = a.st and sb = b.st in
  let plans = Rns.plans a.basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j plan -> Ring_backend.pointwise plan sa.rows.(j) sb.rows.(j))
      plans
  in
  { basis = a.basis; st = { repr = Eval; rows } }

let mul a b =
  if not (Obs.enabled ()) then mul_impl a b
  else begin
    Obs.Metrics.add m_limb_ntt_muls (Array.length (Rns.primes a.basis));
    Obs.sampled_span mul_sampler "rq.mul"
      ~attrs:[ ("degree", Obs.Json.Int (Rns.degree a.basis)) ]
      (fun () -> mul_impl a b)
  end

(* dot a b = sum_i a.(i) * b.(i): the convolution cross terms of a
   ciphertext tensor product, fused so every limb accumulates all
   pointwise products in one pass over one accumulator row. *)
let dot_impl a b =
  let len = Array.length a in
  if len = 0 || Array.length b <> len then invalid_arg "Rq.dot: length mismatch";
  let basis = a.(0).basis in
  let check x = if not (Rns.equal x.basis basis) then invalid_arg "Rq.dot: basis mismatch" in
  Array.iter check a;
  Array.iter check b;
  Array.iter force_eval a;
  Array.iter force_eval b;
  let plans = Rns.plans basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree basis
      (fun j plan ->
        let acc = Array.make (Rns.degree basis) 0 in
        for i = 0 to len - 1 do
          Ring_backend.pointwise_acc plan ~acc a.(i).st.rows.(j) b.(i).st.rows.(j)
        done;
        acc)
      plans
  in
  { basis; st = { repr = Eval; rows } }

let dot a b =
  if Array.length a = 0 || Array.length b <> Array.length a then
    invalid_arg "Rq.dot: length mismatch";
  if not (Obs.enabled ()) then dot_impl a b
  else begin
    Obs.Metrics.add m_limb_ntt_muls (Array.length a * Array.length (Rns.primes a.(0).basis));
    Obs.sampled_span dot_sampler "rq.dot"
      ~attrs:[ ("terms", Obs.Json.Int (Array.length a)) ]
      (fun () -> dot_impl a b)
  end

let mul_scalar a s =
  let sa = a.st in
  let primes = Rns.primes a.basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j row ->
        let sv = Modarith.reduce primes.(j) s in
        Array.map (fun c -> Modarith.mul primes.(j) c sv) row)
      sa.rows
  in
  { basis = a.basis; st = { repr = sa.repr; rows } }

let mul_scalar_residues a scalar =
  let primes = Rns.primes a.basis in
  if Array.length scalar <> Array.length primes then
    invalid_arg "Rq.mul_scalar_residues: wrong residue count";
  let sa = a.st in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j row ->
        let sv = Modarith.reduce primes.(j) scalar.(j) in
        Array.map (fun c -> Modarith.mul primes.(j) c sv) row)
      sa.rows
  in
  { basis = a.basis; st = { repr = sa.repr; rows } }

let random_uniform basis rng =
  let n = Rns.degree basis in
  let rows =
    Array.map (fun p -> Array.init n (fun _ -> Rng.int rng p)) (Rns.primes basis)
  in
  { basis; st = { repr = Coeff; rows } }

let sample_signed basis rng draw =
  let n = Rns.degree basis in
  let coeffs = Array.init n (fun _ -> draw rng) in
  of_centered_coeffs basis coeffs

let sample_ternary basis rng = sample_signed basis rng (fun rng -> Rng.int rng 3 - 1)

let sample_cbd basis ~eta rng =
  sample_signed basis rng (fun rng ->
      let acc = ref 0 in
      for _ = 1 to eta do
        if Rng.bool rng then incr acc;
        if Rng.bool rng then decr acc
      done;
      !acc)

let pp fmt t =
  let coeffs = to_bigint_coeffs t in
  let n = min 8 (Array.length coeffs) in
  Format.fprintf fmt "[";
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Bigint.pp fmt coeffs.(i)
  done;
  if Array.length coeffs > n then Format.fprintf fmt "; ...";
  Format.fprintf fmt "]"
