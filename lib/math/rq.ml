module Rng = Mycelium_util.Rng
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs

(* Hot-op observability (DESIGN.md §8): a counter of per-limb NTT
   multiplies, plus one sampled span per 64 ring multiplications so a
   trace shows where ring time goes without a span per call.  The
   call sites guard on [Obs.enabled] so the disabled path costs one
   branch and allocates nothing. *)
let m_limb_ntt_muls = Obs.Metrics.counter "rq.limb_ntt_muls"
let mul_sampler = Obs.sampler ~every:64

type t = { basis : Rns.t; rows : int array array }

(* Per-limb parallelism: each RNS row is independent, so limb ops map
   cleanly onto the domain pool.  Dispatch costs a few microseconds, so
   only ship work out once a limb is big enough to amortise it: NTT
   multiplies (O(n log n) with a large constant) from degree 512, plain
   pointwise passes only from degree 4096.  Results are written by limb
   index, so the output is identical at any domain count. *)
let ntt_par_degree = 512
let pointwise_par_degree = 4096

let pmapi ~min_degree basis f arr =
  if Rns.degree basis >= min_degree && Array.length arr > 1 then
    Pool.mapi_array (Pool.default ()) f arr
  else Array.mapi f arr

let basis_of t = t.basis

let zero basis =
  let n = Rns.degree basis in
  { basis; rows = Array.map (fun _ -> Array.make n 0) (Rns.primes basis) }

let of_centered_coeffs basis coeffs =
  let n = Rns.degree basis in
  if Array.length coeffs > n then invalid_arg "Rq.of_centered_coeffs: too many coefficients";
  let rows =
    Array.map
      (fun p ->
        let row = Array.make n 0 in
        Array.iteri (fun i c -> row.(i) <- Modarith.reduce p c) coeffs;
        row)
      (Rns.primes basis)
  in
  { basis; rows }

let constant basis v = of_centered_coeffs basis [| v |]

let one basis = constant basis 1

let monomial basis ~coeff ~exponent =
  let n = Rns.degree basis in
  if exponent < 0 then invalid_arg "Rq.monomial: negative exponent";
  (* x^N = -1, so reduce the exponent mod 2N with a sign flip. *)
  let e = exponent mod (2 * n) in
  let e, coeff = if e >= n then (e - n, -coeff) else (e, coeff) in
  let coeffs = Array.make (e + 1) 0 in
  coeffs.(e) <- coeff;
  of_centered_coeffs basis coeffs

let residues t = t.rows

let of_residues basis rows =
  let n = Rns.degree basis in
  let k = Array.length (Rns.primes basis) in
  if Array.length rows <> k then invalid_arg "Rq.of_residues: wrong number of rows";
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Rq.of_residues: wrong row length") rows;
  { basis; rows = Array.map Array.copy rows }

let to_bigint_coeffs t =
  let n = Rns.degree t.basis in
  let k = Array.length t.rows in
  let tmp = Array.make k 0 in
  Array.init n (fun i ->
      for j = 0 to k - 1 do
        tmp.(j) <- t.rows.(j).(i)
      done;
      Rns.to_bigint_centered t.basis tmp)

let equal a b = Rns.primes a.basis = Rns.primes b.basis && a.rows = b.rows

let map2 f a b =
  if Rns.degree a.basis <> Rns.degree b.basis
     || Rns.primes a.basis <> Rns.primes b.basis
  then invalid_arg "Rq: basis mismatch";
  let primes = Rns.primes a.basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j p ->
        let ra = a.rows.(j) and rb = b.rows.(j) in
        Array.init (Array.length ra) (fun i -> f p ra.(i) rb.(i)))
      primes
  in
  { basis = a.basis; rows }

let add a b = map2 Modarith.add a b
let sub a b = map2 Modarith.sub a b

let neg a =
  let primes = Rns.primes a.basis in
  { a with
    rows =
      pmapi ~min_degree:pointwise_par_degree a.basis
        (fun j row -> Array.map (Modarith.neg primes.(j)) row)
        a.rows
  }

let mul_impl a b =
  if Rns.primes a.basis <> Rns.primes b.basis then invalid_arg "Rq.mul: basis mismatch";
  let plans = Rns.plans a.basis in
  let rows =
    pmapi ~min_degree:ntt_par_degree a.basis
      (fun j plan -> Ntt.multiply plan a.rows.(j) b.rows.(j))
      plans
  in
  { basis = a.basis; rows }

let mul a b =
  if not (Obs.enabled ()) then mul_impl a b
  else begin
    Obs.Metrics.add m_limb_ntt_muls (Array.length (Rns.primes a.basis));
    Obs.sampled_span mul_sampler "rq.mul"
      ~attrs:[ ("degree", Obs.Json.Int (Rns.degree a.basis)) ]
      (fun () -> mul_impl a b)
  end

let mul_scalar a s =
  let primes = Rns.primes a.basis in
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j row ->
        let sv = Modarith.reduce primes.(j) s in
        Array.map (fun c -> Modarith.mul primes.(j) c sv) row)
      a.rows
  in
  { a with rows }

let mul_scalar_residues a scalar =
  let primes = Rns.primes a.basis in
  if Array.length scalar <> Array.length primes then
    invalid_arg "Rq.mul_scalar_residues: wrong residue count";
  let rows =
    pmapi ~min_degree:pointwise_par_degree a.basis
      (fun j row ->
        let sv = Modarith.reduce primes.(j) scalar.(j) in
        Array.map (fun c -> Modarith.mul primes.(j) c sv) row)
      a.rows
  in
  { a with rows }

let random_uniform basis rng =
  let n = Rns.degree basis in
  let rows =
    Array.map (fun p -> Array.init n (fun _ -> Rng.int rng p)) (Rns.primes basis)
  in
  { basis; rows }

let sample_signed basis rng draw =
  let n = Rns.degree basis in
  let coeffs = Array.init n (fun _ -> draw rng) in
  of_centered_coeffs basis coeffs

let sample_ternary basis rng = sample_signed basis rng (fun rng -> Rng.int rng 3 - 1)

let sample_cbd basis ~eta rng =
  sample_signed basis rng (fun rng ->
      let acc = ref 0 in
      for _ = 1 to eta do
        if Rng.bool rng then incr acc;
        if Rng.bool rng then decr acc
      done;
      !acc)

let pp fmt t =
  let coeffs = to_bigint_coeffs t in
  let n = min 8 (Array.length coeffs) in
  Format.fprintf fmt "[";
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Bigint.pp fmt coeffs.(i)
  done;
  if Array.length coeffs > n then Format.fprintf fmt "; ...";
  Format.fprintf fmt "]"
