(** Modular arithmetic over word-sized prime fields.

    All moduli handled here are at most 2^31 - 1, so that the product of
    two reduced residues fits in OCaml's 63-bit native [int] without
    overflow. The RNS representation in {!Rns} builds big ciphertext
    moduli out of several such primes, keeping every hot-path operation
    in native ints. *)

val add : int -> int -> int -> int
(** [add p a b] is [(a + b) mod p] for reduced [a], [b]. *)

val sub : int -> int -> int -> int
(** [sub p a b] is [(a - b) mod p], non-negative. *)

val neg : int -> int -> int

val mul : int -> int -> int -> int
(** [mul p a b]; requires [p < 2^31] and reduced operands. *)

val pow : int -> int -> int -> int
(** [pow p base e] for [e >= 0], square-and-multiply. *)

val inv : int -> int -> int
(** [inv p a] is the multiplicative inverse of [a] mod prime [p].
    Raises [Invalid_argument] if [a = 0 (mod p)]. *)

val reduce : int -> int -> int
(** [reduce p x] maps any int (possibly negative) to [\[0, p)]. *)

val to_signed : int -> int -> int
(** [to_signed p x] maps a reduced residue to the centered range
    [(-p/2, p/2\]]. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for all [n < 3.3e24] (we use it
    for word-sized candidates only). *)

val primitive_root : int -> int
(** A generator of the multiplicative group of the prime field [p].
    Requires [p] prime. *)

val nth_root_of_unity : int -> int -> int
(** [nth_root_of_unity p n] is an element of exact order [n] in
    [(Z/p)^*]. Requires [n] divides [p - 1]. *)

val shoup_precompute : int -> int -> int
(** [shoup_precompute p w] is the Shoup companion quotient
    [floor (w * 2^62 / p)] for a fixed multiplicand [w], computed
    entirely in native ints. Requires [p < 2^31]. *)

val shoup_mul : int -> int -> int -> int -> int
(** [shoup_mul p w w' x] is [x * w mod p] using the precomputed
    [w' = shoup_precompute p w]: two multiplies plus a conditional
    subtraction, no division. Requires reduced [x] and [p < 2^31].
    The NTT butterflies inline this arithmetic; this entry point is the
    specification used by the equivalence tests. *)
