let add p a b =
  let s = a + b in
  if s >= p then s - p else s

let sub p a b =
  let d = a - b in
  if d < 0 then d + p else d

let neg p a = if a = 0 then 0 else p - a

let mul p a b = a * b mod p

let pow p base e =
  if e < 0 then invalid_arg "Modarith.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul p acc base else acc in
      go acc (mul p base base) (e lsr 1)
    end
  in
  go 1 (base mod p) e

let reduce p x =
  let r = x mod p in
  if r < 0 then r + p else r

let inv p a =
  let a = reduce p a in
  if a = 0 then invalid_arg "Modarith.inv: zero has no inverse";
  (* Fermat: a^(p-2) mod p for prime p. *)
  pow p a (p - 2)

let to_signed p x = if x > p / 2 then x - p else x

(* Deterministic Miller–Rabin for word-sized inputs. The operand bound
   [n < 2^31] keeps every product inside OCaml's native int. *)
let is_prime n =
  if n >= 1 lsl 31 then invalid_arg "Modarith.is_prime: operand too large";
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    let d = ref (n - 1) and r = ref 0 in
    while !d land 1 = 0 do
      d := !d lsr 1;
      incr r
    done;
    let witness a =
      let a = a mod n in
      if a = 0 then false
      else begin
        let x = ref (pow n a !d) in
        if !x = 1 || !x = n - 1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to !r - 1 do
               x := mul n !x !x;
               if !x = n - 1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      end
    in
    (* These witnesses are deterministic for all n < 3.2e18; far beyond
       the 2^31 operand bound. *)
    not (List.exists witness [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ])
  end

let factor_distinct n =
  (* Distinct prime factors by trial division; inputs here are p - 1 for
     word-sized p, so this is fast enough. *)
  let rec go n d acc =
    if d * d > n then if n > 1 then n :: acc else acc
    else if n mod d = 0 then begin
      let rec strip n = if n mod d = 0 then strip (n / d) else n in
      go (strip n) (d + 1) (d :: acc)
    end
    else go n (d + 1) acc
  in
  go n 2 []

let primitive_root p =
  if p = 2 then 1
  else begin
    let factors = factor_distinct (p - 1) in
    let is_generator g =
      List.for_all (fun q -> pow p g ((p - 1) / q) <> 1) factors
    in
    let rec search g =
      if g >= p then invalid_arg "Modarith.primitive_root: no generator (p not prime?)"
      else if is_generator g then g
      else search (g + 1)
    in
    search 2
  end

let nth_root_of_unity p n =
  if (p - 1) mod n <> 0 then
    invalid_arg "Modarith.nth_root_of_unity: n does not divide p-1";
  let g = primitive_root p in
  pow p g ((p - 1) / n)

(* --- Shoup precomputed-quotient multiplication ----------------------- *)

(* For a constant multiplicand w (an NTT twiddle), w' = floor(w*2^62/p)
   turns "x*w mod p" into two multiplies, shifts and one conditional
   subtraction — no hardware division.  Everything below relies on the
   module-wide operand bound p < 2^31, which keeps every intermediate
   inside OCaml's 63-bit native int (derivation in DESIGN.md §9). *)

let shoup_precompute p w =
  if p >= 1 lsl 31 then invalid_arg "Modarith.shoup_precompute: modulus too large";
  let w = reduce p w in
  (* floor(w * 2^62 / p) without a 93-bit intermediate: divide in two
     31-bit halves.  w*2^31 < 2^62 fits; the second step folds the
     remainder back in, so the composite quotient is the exact floor. *)
  let q1 = (w lsl 31) / p in
  let r1 = (w lsl 31) - (q1 * p) in
  (q1 lsl 31) + ((r1 lsl 31) / p)

let shoup_mul p w w' x =
  (* q = floor(x * w' / 2^62), split so x*w' (up to 2^93) never
     materialises: x*(hi 2^31 + lo)/2^62 = (x*hi + floor(x*lo/2^31))/2^31
     — exact because the discarded fraction of x*lo/2^31 contributes
     less than one unit after the outer shift.  Then r = x*w - q*p is in
     [0, 2p) (standard Shoup bound given x < 2^31), so one conditional
     subtraction completes the reduction. *)
  let q = ((x * (w' lsr 31)) + ((x * (w' land 0x7FFFFFFF)) lsr 31)) lsr 31 in
  let r = (x * w) - (q * p) in
  if r >= p then r - p else r
