(* Montgomery Bigarray NTT kernels: the fast ring backend.

   Same negacyclic transform as Ntt (identical twiddle tables via
   Ntt.tables, so final results are bit-identical), but engineered for
   throughput on the critical path:

   - Montgomery reduction with R = 2^62 instead of Shoup quotients;
     twiddles are stored in the Montgomery domain (w*R mod p), so the
     data itself never leaves the normal domain.
   - Radix-4: two radix-2 stages fused per memory pass, halving loads
     and stores over the working set.
   - Harvey-style lazy reduction: intermediates live in [0, 4p) on the
     forward path and [0, 2p) on the inverse path, and every residual
     conditional subtraction is branchless (sign-mask arithmetic), so
     the butterflies contain no data-dependent branches at all.
     Canonicalisation to [0, p) is fused into the copy-out (forward)
     and n^-1 scaling (inverse) passes, which restores exactly the
     Reference backend's outputs.
   - A flat unboxed Bigarray workspace per domain with unchecked
     accesses.

   The hand-inlined lazy Montgomery product of x < 4p by a
   Montgomery-domain constant wm < p is (p < 2^30 keeps every
   intermediate inside a 63-bit int; see Montarith.reduce and
   DESIGN.md §11 for the carry argument):
     t  = x * wm                          < 4p*p < 2^62
     m  = t * (-p^-1)  mod 2^62
     c0 = t + (m land mask31) * p         < 2^63
     u  = ((c0 lsr 31) + (m lsr 31) * p) lsr 31
   with u = (t + m*p) / 2^62 <= p exactly — no trailing subtraction
   needed to keep the [0, 2p) invariant. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let mask62 = (1 lsl 62) - 1
let mask31 = 0x7FFFFFFF

type plan = {
  p : int;
  n : int;
  log_n : int;
  neg_p_inv : int;
  (* Montgomery-domain twiddles, same bit-reversed Longa–Naehrig
     layout as Ntt.tables. *)
  psi_m : ba;
  inv_psi_m : ba;
  n_inv_m : int;
}

let modulus t = t.p
let degree t = t.n
let available ~p = Montarith.supports p

let make_plan ~p ~degree =
  if not (available ~p) then
    invalid_arg "Mont_backend.make_plan: modulus must be odd and in (2, 2^30)";
  let tb = Ntt.tables ~p ~degree in
  let mc = Montarith.precompute p in
  let to_ba arr =
    let b = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout (Array.length arr) in
    Array.iteri (fun i v -> b.{i} <- Montarith.to_mont mc v) arr;
    b
  in
  {
    p;
    n = degree;
    log_n = tb.Ntt.t_log_n;
    neg_p_inv = Montarith.neg_p_inv mc;
    psi_m = to_ba tb.Ntt.t_psi_pows;
    inv_psi_m = to_ba tb.Ntt.t_inv_psi_pows;
    n_inv_m = Montarith.to_mont mc tb.Ntt.t_n_inv;
  }

(* Per-domain transform workspace.  Kernels are leaves (they never call
   back into the pool), so one buffer per domain cannot alias a
   concurrent transform; it only ever grows. *)
let scratch_key : ba ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      ref (Bigarray.Array1.create Bigarray.Int Bigarray.C_layout 0))

let scratch n =
  let r = Domain.DLS.get scratch_key in
  if Bigarray.Array1.dim !r < n then
    r := Bigarray.Array1.create Bigarray.Int Bigarray.C_layout n;
  !r

external ba_get : ba -> int -> int = "%caml_ba_unsafe_ref_1"
external ba_set : ba -> int -> int -> unit = "%caml_ba_unsafe_set_1"

(* Cooley–Tukey forward.  Stages m = 1, 2, ..., n/2 fused in
   consecutive pairs; when log_n is odd the last stage (m = n/2,
   adjacent pairs) runs alone as radix-2.  Loop invariant: workspace
   values < 4p; each butterfly reduces its additive inputs to < 2p
   with a branchless subtract-by-2p ("d + (d asr 62 land 2p)"), the
   Montgomery products of values < 4p land in [0, p], and sums /
   shifted differences land back below 4p. *)
let forward_into t ~src ~dst =
  let p = t.p and n = t.n in
  if Array.length src <> n || Array.length dst <> n then
    invalid_arg "Mont_backend.forward: wrong length";
  if n = 1 then (if dst != src then dst.(0) <- src.(0))
  else begin
    let pni = t.neg_p_inv in
    let p2 = 2 * p in
    let psi = t.psi_m in
    let w = scratch n in
    for i = 0 to n - 1 do
      ba_set w i (Array.unsafe_get src i)
    done;
    let m = ref 1 and len = ref (n / 2) in
    while !len >= 2 do
      let m_v = !m and l = !len in
      let h = l / 2 in
      for i = 0 to m_v - 1 do
        let w1 = ba_get psi (m_v + i) in
        let w2 = ba_get psi ((2 * m_v) + (2 * i)) in
        let w3 = ba_get psi ((2 * m_v) + (2 * i) + 1) in
        let base = 2 * i * l in
        for j = base to base + h - 1 do
          let a = ba_get w j in
          let b = ba_get w (j + h) in
          let c = ba_get w (j + l) in
          let d = ba_get w (j + l + h) in
          (* Stage m: (a, c) and (b, d) against w1. *)
          let x0 = c * w1 in
          let m0 = (x0 * pni) land mask62 in
          let t0 = (((x0 + ((m0 land mask31) * p)) lsr 31) + ((m0 lsr 31) * p)) lsr 31 in
          let x1 = d * w1 in
          let m1 = (x1 * pni) land mask62 in
          let t1 = (((x1 + ((m1 land mask31) * p)) lsr 31) + ((m1 lsr 31) * p)) lsr 31 in
          let ar = a - p2 in
          let ar = ar + ((ar asr 62) land p2) in
          let br = b - p2 in
          let br = br + ((br asr 62) land p2) in
          let u0 = ar + t0 in
          let v0 = ar - t0 + p2 in
          let u1 = br + t1 in
          let v1 = br - t1 + p2 in
          (* Stage 2m: (u0, u1) against w2; (v0, v1) against w3. *)
          let x2 = u1 * w2 in
          let m2 = (x2 * pni) land mask62 in
          let s0 = (((x2 + ((m2 land mask31) * p)) lsr 31) + ((m2 lsr 31) * p)) lsr 31 in
          let x3 = v1 * w3 in
          let m3 = (x3 * pni) land mask62 in
          let s1 = (((x3 + ((m3 land mask31) * p)) lsr 31) + ((m3 lsr 31) * p)) lsr 31 in
          let u0r = u0 - p2 in
          let u0r = u0r + ((u0r asr 62) land p2) in
          let v0r = v0 - p2 in
          let v0r = v0r + ((v0r asr 62) land p2) in
          ba_set w j (u0r + s0);
          ba_set w (j + h) (u0r - s0 + p2);
          ba_set w (j + l) (v0r + s1);
          ba_set w (j + l + h) (v0r - s1 + p2)
        done
      done;
      m := m_v * 4;
      len := l / 4
    done;
    if !len = 1 then begin
      (* Lone final radix-2 stage: m = n/2, adjacent pairs. *)
      let m_v = n / 2 in
      for i = 0 to m_v - 1 do
        let wt = ba_get psi (m_v + i) in
        let j = 2 * i in
        let u = ba_get w j in
        let x = ba_get w (j + 1) in
        let x0 = x * wt in
        let m0 = (x0 * pni) land mask62 in
        let v = (((x0 + ((m0 land mask31) * p)) lsr 31) + ((m0 lsr 31) * p)) lsr 31 in
        let ur = u - p2 in
        let ur = ur + ((ur asr 62) land p2) in
        ba_set w j (ur + v);
        ba_set w (j + 1) (ur - v + p2)
      done
    end;
    (* Canonicalise [0, 4p) -> [0, p) fused with the copy out. *)
    for i = 0 to n - 1 do
      let x = ba_get w i in
      let x = x - p2 in
      let x = x + ((x asr 62) land p2) in
      let x = x - p in
      let x = x + ((x asr 62) land p) in
      Array.unsafe_set dst i x
    done
  end

(* Gentleman–Sande inverse, stages m = n/2 down to 1 fused in pairs;
   when log_n is odd the last stage (m = 1, span n/2) runs alone.
   Invariant: workspace values < 2p (sums reduced branchlessly,
   Montgomery products of differences + 2p < 4p land in [0, p]).  The
   final n^-1 scaling canonicalises and doubles as the copy out. *)
let inverse_into t ~src ~dst =
  let p = t.p and n = t.n in
  if Array.length src <> n || Array.length dst <> n then
    invalid_arg "Mont_backend.inverse: wrong length";
  if n = 1 then begin
    let x = src.(0) in
    let t0 = x * t.n_inv_m in
    let m0 = (t0 * t.neg_p_inv) land mask62 in
    let u0 = (((t0 + ((m0 land mask31) * p)) lsr 31) + ((m0 lsr 31) * p)) lsr 31 in
    let u0 = u0 - p in
    dst.(0) <- u0 + ((u0 asr 62) land p)
  end
  else begin
    let pni = t.neg_p_inv in
    let p2 = 2 * p in
    let ipsi = t.inv_psi_m in
    let w = scratch n in
    for i = 0 to n - 1 do
      ba_set w i (Array.unsafe_get src i)
    done;
    (* Fused pair = stage 2m (span l) then stage m (span 2l). *)
    let m = ref (n / 4) and len = ref 1 in
    while !m >= 1 do
      let m_v = !m and l = !len in
      for i = 0 to m_v - 1 do
        let wa = ba_get ipsi ((2 * m_v) + (2 * i)) in
        let wb = ba_get ipsi ((2 * m_v) + (2 * i) + 1) in
        let wc = ba_get ipsi (m_v + i) in
        let base = 4 * i * l in
        for j = base to base + l - 1 do
          let a = ba_get w j in
          let b = ba_get w (j + l) in
          let c = ba_get w (j + (2 * l)) in
          let d = ba_get w (j + (3 * l)) in
          (* Stage 2m: (a, b) against wa; (c, d) against wb. *)
          let s0 = a + b - p2 in
          let u0 = s0 + ((s0 asr 62) land p2) in
          let x0 = (a - b + p2) * wa in
          let m0 = (x0 * pni) land mask62 in
          let v0 = (((x0 + ((m0 land mask31) * p)) lsr 31) + ((m0 lsr 31) * p)) lsr 31 in
          let s1 = c + d - p2 in
          let u1 = s1 + ((s1 asr 62) land p2) in
          let x1 = (c - d + p2) * wb in
          let m1 = (x1 * pni) land mask62 in
          let v1 = (((x1 + ((m1 land mask31) * p)) lsr 31) + ((m1 lsr 31) * p)) lsr 31 in
          (* Stage m: (u0, u1) and (v0, v1) against wc. *)
          let s2 = u0 + u1 - p2 in
          ba_set w j (s2 + ((s2 asr 62) land p2));
          let x2 = (u0 - u1 + p2) * wc in
          let m2 = (x2 * pni) land mask62 in
          ba_set w
            (j + (2 * l))
            ((((x2 + ((m2 land mask31) * p)) lsr 31) + ((m2 lsr 31) * p)) lsr 31);
          let s3 = v0 + v1 - p2 in
          ba_set w (j + l) (s3 + ((s3 asr 62) land p2));
          let x3 = (v0 - v1 + p2) * wc in
          let m3 = (x3 * pni) land mask62 in
          ba_set w
            (j + (3 * l))
            ((((x3 + ((m3 land mask31) * p)) lsr 31) + ((m3 lsr 31) * p)) lsr 31)
        done
      done;
      m := m_v / 4;
      len := l * 4
    done;
    if t.log_n land 1 = 1 then begin
      (* Lone final radix-2 stage: m = 1, span n/2. *)
      let half = n / 2 in
      let w1 = ba_get ipsi 1 in
      for j = 0 to half - 1 do
        let a = ba_get w j in
        let b = ba_get w (j + half) in
        let s = a + b - p2 in
        ba_set w j (s + ((s asr 62) land p2));
        let x0 = (a - b + p2) * w1 in
        let m0 = (x0 * pni) land mask62 in
        ba_set w (j + half)
          ((((x0 + ((m0 land mask31) * p)) lsr 31) + ((m0 lsr 31) * p)) lsr 31)
      done
    end;
    (* n^-1 scaling, canonicalising [0, 2p) -> [0, p), fused with the
       copy out. *)
    let ninv = t.n_inv_m in
    for i = 0 to n - 1 do
      let x = ba_get w i in
      let t0 = x * ninv in
      let m0 = (t0 * pni) land mask62 in
      let u0 = (((t0 + ((m0 land mask31) * p)) lsr 31) + ((m0 lsr 31) * p)) lsr 31 in
      let u0 = u0 - p in
      Array.unsafe_set dst i (u0 + ((u0 asr 62) land p))
    done
  end

let forward t a = forward_into t ~src:a ~dst:a
let inverse t a = inverse_into t ~src:a ~dst:a

(* Pointwise products are exact single reductions in either backend;
   the Montgomery trick only pays inside the butterflies, where one
   operand is a precomputable constant.  Unchecked accesses are the
   only difference from the Reference path — results are identical. *)
let pointwise_into t ~dst a b =
  let n = t.n and p = t.p in
  if Array.length a <> n || Array.length b <> n || Array.length dst <> n then
    invalid_arg "Mont_backend.pointwise: wrong length";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i (Array.unsafe_get a i * Array.unsafe_get b i mod p)
  done

let pointwise_acc t ~acc a b =
  let n = t.n and p = t.p in
  if Array.length a <> n || Array.length b <> n || Array.length acc <> n then
    invalid_arg "Mont_backend.pointwise_acc: wrong length";
  for i = 0 to n - 1 do
    let m = Array.unsafe_get a i * Array.unsafe_get b i mod p in
    let s = Array.unsafe_get acc i + m in
    Array.unsafe_set acc i (if s >= p then s - p else s)
  done
