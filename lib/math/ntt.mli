(** Negacyclic number-theoretic transform over a word-sized prime field.

    The polynomial ring used by BGV is R_q = Z_q[x]/(x^N + 1) with N a
    power of two. Multiplication in R_q is a *negacyclic* convolution,
    computed here by pre-twisting with powers of a 2N-th root of unity
    psi and running a standard radix-2 NTT, so no zero-padding is
    needed. The prime must satisfy p = 1 (mod 2N). *)

type plan
(** Precomputed twiddle tables for one (p, N) pair. *)

val find_primes : degree:int -> bits:int -> count:int -> int list
(** [find_primes ~degree:n ~bits ~count] returns [count] distinct primes
    p with [p = 1 (mod 2n)], of roughly [bits] bits (searching downward
    from 2^bits). [bits <= 31]. Raises [Failure] if too few exist. *)

val make_plan : p:int -> degree:int -> plan
(** Build tables for the ring Z_p[x]/(x^degree + 1). [degree] must be a
    power of two and [p = 1 (mod 2*degree)]. *)

type tables = {
  t_p : int;
  t_n : int;
  t_log_n : int;
  t_psi_pows : int array;  (** psi^(bitrev i), psi a primitive 2N-th root *)
  t_inv_psi_pows : int array;
  t_n_inv : int;
}
(** The raw merged twist+twiddle tables (Longa–Naehrig layout), shared
    by every ring backend: {!Mont_backend} re-encodes exactly these
    values into the Montgomery domain, which is what makes
    cross-backend results bit-identical by construction. *)

val tables : p:int -> degree:int -> tables
(** Same preconditions as {!make_plan}. *)

val modulus : plan -> int
val degree : plan -> int

val forward : plan -> int array -> unit
(** In-place forward negacyclic NTT of a length-[degree] coefficient
    array with entries in [\[0, p)]. After the call the array holds the
    evaluation-domain representation. Butterflies use Shoup
    precomputed-quotient multiplication (two multiplies plus a
    conditional subtraction per twiddle product; no division). *)

val inverse : plan -> int array -> unit
(** In-place inverse transform; [inverse plan (forward plan a)] restores
    [a]. *)

val forward_into : plan -> src:int array -> dst:int array -> unit
(** Forward transform reading [src] and writing [dst] without an
    intermediate copy: the first butterfly stage is fused with the
    load. [src] is left intact ([src == dst] is allowed and degrades to
    the in-place transform). *)

val inverse_into : plan -> src:int array -> dst:int array -> unit
(** Inverse counterpart of {!forward_into}. *)

val pointwise : plan -> int array -> int array -> int array
(** Coordinate-wise product of two evaluation-domain arrays: the whole
    cost of a ring multiplication once both operands are resident in
    the evaluation domain. *)

val pointwise_into : plan -> dst:int array -> int array -> int array -> unit
(** [pointwise] into a caller-provided array ([dst] may alias an
    input). *)

val pointwise_acc : plan -> acc:int array -> int array -> int array -> unit
(** [acc.(i) <- acc.(i) + a.(i)*b.(i) mod p]: fused multiply-accumulate
    for convolution cross terms (dot products of component slices). *)

val multiply : plan -> int array -> int array -> int array
(** Negacyclic product of two coefficient-domain polynomials. *)

val multiply_naive : p:int -> int array -> int array -> int array
(** Schoolbook negacyclic product; O(N^2), used as a test oracle and for
    tiny degrees. *)
