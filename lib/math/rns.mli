(** Residue number system over a chain of NTT-friendly primes.

    A large ciphertext modulus q = p_0 * p_1 * ... * p_{L-1} is
    represented by per-prime residues so that all polynomial arithmetic
    runs on native ints (see {!Modarith}); the big integer q only
    appears at CRT reconstruction time (BGV decryption, key switching
    digit decomposition). *)

type t
(** An RNS basis: the primes, their NTT plans for a fixed ring degree,
    and precomputed CRT constants. *)

val equal : t -> t -> bool
(** Same ring degree and the same prime chain, in order.  Two equal
    bases share all derived constants, so elements may move freely
    between them. *)

val make : ?backend:string -> primes:int list -> degree:int -> unit -> t
(** Build a basis. Every prime must satisfy [p = 1 (mod 2*degree)] and
    be pairwise distinct. [?backend] pins the ring-kernel backend for
    every limb plan; by default {!Ring_backend} picks per profile (see
    its selection policy). The backend never affects values — bases
    differing only in backend are {!equal} and fully interoperable. *)

val standard : ?backend:string -> degree:int -> prime_bits:int -> levels:int -> unit -> t
(** Convenience: pick [levels] NTT-friendly primes of [prime_bits] bits
    via {!Ntt.find_primes}. *)

val primes : t -> int array
val plans : t -> Ring_backend.plan array

(** [backend_name t] is the name of the ring backend the limb plans
    were built on. *)
val backend_name : t -> string
val degree : t -> int
val level_count : t -> int

val modulus : t -> Bigint.t
(** q, the product of all primes. *)

val modulus_bits : t -> int

val to_bigint : t -> int array -> Bigint.t
(** [to_bigint t residues] CRT-reconstructs a single coefficient from
    its per-prime residues ([residues.(i)] mod [primes.(i)]) to the
    representative in [\[0, q)]. *)

val to_bigint_centered : t -> int array -> Bigint.t
(** Same, but returns the centered representative in [(-q/2, q/2\]]. *)

val to_bigint_rows_centered : t -> int array array -> Bigint.t array
(** Centered CRT reconstruction of a full residue matrix
    ([rows.(limb).(coeff)], as returned by {!Rq.residues} in the
    coefficient domain) in a single limb-major pass — equivalent to
    mapping {!to_bigint_centered} over columns but without the
    per-coefficient temporary. *)

val of_bigint : t -> Bigint.t -> int array
(** Project an integer (any sign) onto the basis. *)

val of_int : t -> int -> int array
(** Project a signed machine integer (fast path). *)

val drop_last : t -> t
(** The basis with its last prime removed (modulus switching). Raises
    [Invalid_argument] on a single-prime basis. *)
