(** Montgomery Bigarray NTT kernels: the fast ring backend.

    Computes exactly the same negacyclic transform as {!Ntt} — both
    read the tables from {!Ntt.tables} — but with Montgomery-domain
    twiddles (radix R = 2^62, see {!Montarith}), radix-4 butterflies
    (two radix-2 stages fused per memory pass) and unchecked accesses
    into a flat unboxed [Bigarray] workspace held per domain.  Every
    butterfly output is canonically reduced, so results are
    bit-identical to the Reference backend; only throughput differs.

    Callers normally reach this through {!Ring_backend.Montgomery}. *)

type plan
(** Montgomery-domain twiddle tables for one (p, N) pair. *)

val available : p:int -> bool
(** Montgomery reduction here requires an odd modulus below 2^30
    (the bound that keeps every intermediate inside a 63-bit [int]);
    30-bit NTT primes from {!Ntt.find_primes} always qualify. *)

val make_plan : p:int -> degree:int -> plan
(** Same preconditions as {!Ntt.make_plan}, plus [available ~p]. *)

val modulus : plan -> int
val degree : plan -> int

(** Entry points with the same contracts as their {!Ntt} namesakes
    ([src == dst] allowed; [dst] may alias an input in
    [pointwise_into]; [src] left intact otherwise). *)

val forward : plan -> int array -> unit
val inverse : plan -> int array -> unit
val forward_into : plan -> src:int array -> dst:int array -> unit
val inverse_into : plan -> src:int array -> dst:int array -> unit
val pointwise_into : plan -> dst:int array -> int array -> int array -> unit
val pointwise_acc : plan -> acc:int array -> int array -> int array -> unit
