(* Montgomery arithmetic with R = 2^62 over odd moduli p < 2^30.
   The Montgomery product of reduced x and y is x*y*R^-1 mod p; keeping
   the NTT twiddle tables in the Montgomery domain (w*R mod p) makes
   mont_mul(x, w*R) = x*w mod p, so transform data never leaves the
   normal domain.  All arithmetic stays inside OCaml's 63-bit native
   int: the reduction splits the 62-bit quantities into 31-bit halves
   exactly like Modarith.shoup_mul.  See DESIGN.md §11 for the bound
   derivation. *)

let r_bits = 62
let mask62 = (1 lsl 62) - 1
let mask31 = 0x7FFFFFFF

type ctx = {
  p : int;
  (* -p^-1 mod 2^62: the Montgomery companion constant. *)
  neg_p_inv : int;
  (* R mod p and R^2 mod p, for moving values into the domain. *)
  r_mod_p : int;
  r2_mod_p : int;
}

let modulus c = c.p
let neg_p_inv c = c.neg_p_inv
let r_mod_p c = c.r_mod_p
let r2_mod_p c = c.r2_mod_p

let supports p = p > 2 && p land 1 = 1 && p < 1 lsl 30

let precompute p =
  if not (supports p) then
    invalid_arg "Montarith.precompute: modulus must be odd and in (2, 2^30)";
  (* Newton–Hensel lifting of p^-1 mod 2^62: x <- x*(2 - p*x) doubles
     the number of correct low bits per step.  Any odd p is its own
     inverse mod 8 (p^2 = 1 mod 8), so five steps reach >= 62 bits. *)
  let x = ref p in
  for _ = 1 to 5 do
    x := (!x * (2 - (p * !x))) land mask62
  done;
  let p_inv = !x in
  let neg_p_inv = (0 - p_inv) land mask62 in
  let r_mod_p = Modarith.pow p 2 r_bits in
  { p; neg_p_inv; r_mod_p; r2_mod_p = Modarith.mul p r_mod_p r_mod_p }

(* REDC: t -> t * R^-1 mod p for any t in [0, 2^62).  With
   m = t * (-p^-1) mod 2^62, the sum t + m*p is divisible by 2^62 and
   (t + m*p)/2^62 < p + 1, so one conditional subtraction canonicalises.
   The sum itself needs up to 2^62 + 2^61 bits of headroom, so both t
   and m are split into 31-bit halves; the low accumulator c0 stays
   under 2^61 + 2^31 and the high accumulator t1 under 2^62. *)
let reduce c t =
  if t < 0 || t > mask62 then
    invalid_arg "Montarith.reduce: operand must lie in [0, 2^62)";
  let p = c.p in
  let m = (t * c.neg_p_inv) land mask62 in
  let c0 = (t land mask31) + ((m land mask31) * p) in
  let t1 = (t lsr 31) + ((m lsr 31) * p) + (c0 lsr 31) in
  let u = t1 lsr 31 in
  if u >= p then u - p else u

let mul c x y =
  let p = c.p in
  if x < 0 || x >= p || y < 0 || y >= p then
    invalid_arg "Montarith.mul: operands must be reduced";
  (* x*y < 2^60 < 2^62, so the general reduction applies directly. *)
  reduce c (x * y)

let to_mont c x = mul c x c.r2_mod_p
let of_mont c x = reduce c x
