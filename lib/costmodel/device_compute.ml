module Rng = Mycelium_util.Rng
module Params = Mycelium_bgv.Params
module Bgv = Mycelium_bgv.Bgv
module Zkp = Mycelium_zkp.Zkp

type unit_costs = {
  params : Params.t;
  encrypt_s : float;
  multiply_s : float;
  add_s : float;
}

(* lint: allow-file determinism — this module calibrates the cost model
   against real wall-clock time; measurements are reported, never mixed
   into query results *)
let time_it f =
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.15 do
    f ();
    incr reps
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !reps

let measure ?(params = Params.test_medium) rng =
  let ctx = Bgv.make_ctx params in
  let _, pk = Bgv.keygen ctx rng in
  let a = Bgv.encrypt_value ctx rng pk 1 in
  let b = Bgv.encrypt_value ctx rng pk 2 in
  {
    params;
    encrypt_s = time_it (fun () -> ignore (Bgv.encrypt_value ctx rng pk 1));
    multiply_s = time_it (fun () -> ignore (Bgv.mul a b));
    add_s = time_it (fun () -> ignore (Bgv.add a b));
  }

let work_factor (p : Params.t) =
  let n = float_of_int p.Params.degree in
  float_of_int p.Params.levels *. n *. (log n /. log 2.)

let extrapolate costs target =
  let f = work_factor target /. work_factor costs.params in
  {
    params = target;
    encrypt_s = costs.encrypt_s *. f;
    multiply_s = costs.multiply_s *. f;
    add_s = costs.add_s *. f;
  }

type breakdown = {
  encryptions : int;
  multiplications : int;
  he_seconds : float;
  zkp_seconds : float;
  total_seconds : float;
}

let device_query_cost (d : Defaults.t) costs ~cq =
  (* Contributions to each of d neighbors (Cq ciphertexts each), plus
     the local aggregation: multiplying ~d+1 degree-growing ciphertexts
     costs ~sum of component counts ~ d^2/2 component multiplies. *)
  let encryptions = (d.Defaults.degree * cq) + 1 in
  let component_mults = d.Defaults.degree * (d.Defaults.degree + 3) / 2 in
  let he =
    (float_of_int encryptions *. costs.encrypt_s)
    +. (float_of_int component_mults *. costs.multiply_s)
  in
  let zkp =
    Zkp.Cost.prove_seconds
      ~constraints:(Zkp.Cost.contribution_constraints costs.params)
  in
  {
    encryptions;
    multiplications = component_mults;
    he_seconds = he;
    zkp_seconds = zkp;
    total_seconds = he +. zkp;
  }

let paper_anchor_seconds = 15. *. 60.
