module Params = Mycelium_bgv.Params
module Analysis = Mycelium_query.Analysis
module Corpus = Mycelium_query.Corpus

type t = {
  n_devices : float;
  hops : int;
  replicas : int;
  fraction : float;
  committee_size : int;
  degree : int;
  malicious : float;
}

let paper =
  {
    n_devices = 1.1e6;
    hops = 3;
    replicas = 2;
    fraction = 0.1;
    committee_size = 10;
    degree = 10;
    malicious = 0.02;
  }

let equal a b =
  Float.equal a.n_devices b.n_devices
  && Int.equal a.hops b.hops
  && Int.equal a.replicas b.replicas
  && Float.equal a.fraction b.fraction
  && Int.equal a.committee_size b.committee_size
  && Int.equal a.degree b.degree
  && Float.equal a.malicious b.malicious

let ciphertext_bytes = float_of_int (Params.ciphertext_bytes Params.paper ~degree:1)

let ciphertexts_per_query id =
  (Analysis.analyze_exn ~degree_bound:paper.degree (Corpus.find id).Corpus.query)
    .Analysis.ciphertext_count

let pp fmt t =
  Format.fprintf fmt
    "N=%.2g devices, k=%d hops, r=%d replicas, f=%.2f forwarders, c=%d committee, d=%d degree bound, %.1f%% malicious"
    t.n_devices t.hops t.replicas t.fraction t.committee_size t.degree (100. *. t.malicious)
