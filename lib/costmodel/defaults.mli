(** The paper's default parameters (Figure 4) and quantities derived
    from them, used by every extrapolated figure. *)

type t = {
  n_devices : float;  (** N = 1.1e6 *)
  hops : int;  (** k = 3 *)
  replicas : int;  (** r = 2 *)
  fraction : float;  (** f = 0.1 *)
  committee_size : int;  (** c = 10 *)
  degree : int;  (** d = 10 *)
  malicious : float;  (** the MC assumption's 1-2%: default 0.02 *)
}

val paper : t

val equal : t -> t -> bool
(** Field-wise equality (floats compare with [Float.equal]). *)

val ciphertext_bytes : float
(** Size of one degree-1 ciphertext at the paper's BGV parameters
    (~4.5 MB; the paper reports 4.3 MB). *)

val ciphertexts_per_query : string -> int
(** Figure 6's Cq for a corpus query id. *)

val pp : Format.formatter -> t -> unit
