module Rng = Mycelium_util.Rng
module Schema = Mycelium_graph.Schema
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Ast = Mycelium_query.Ast
module Zkp = Mycelium_zkp.Zkp

type t = { ciphertexts : Bgv.ciphertext array; proofs : Zkp.proof array }

(* ------------------------------------------------------------------ *)
(* Query-shape helpers                                                 *)
(* ------------------------------------------------------------------ *)

let conjuncts where =
  match Semantics.split_where where with
  | Ok (_, rows) -> rows
  | Error e -> failwith ("Contribution: " ^ e)

let is_cross p =
  match Analysis.classify_atom p with
  | Ok (Analysis.Cross _) -> true
  | Ok (Analysis.Origin_side | Analysis.Dest_side | Analysis.Constant) -> false
  | Error _ -> (
    (* compound conjunct: cross if it mixes self and dest *)
    let cols = Ast.pred_cols p in
    let has g = List.exists (fun (c : Ast.colref) -> c.Ast.group = g) cols in
    has Ast.Self && has Ast.Dest)

let cross_field info =
  let fields =
    List.filter_map
      (fun p ->
        match Analysis.classify_atom p with
        | Ok (Analysis.Cross f) -> Some f
        | Ok (Analysis.Origin_side | Analysis.Dest_side | Analysis.Constant) | Error _ -> None)
      (conjuncts info.Analysis.query.Ast.where)
  in
  let from_group =
    match info.Analysis.group_kind with
    | Analysis.Group_cross f -> [ f ]
    | Analysis.Group_none | Analysis.Group_self | Analysis.Group_edge -> []
  in
  match List.sort_uniq Ast.compare_field (fields @ from_group) with
  | [] -> None
  | [ f ] -> Some f
  | _ -> failwith "Contribution: multiple cross-column fields are not supported"

let sequence_length info =
  match cross_field info with None -> 1 | Some f -> Analysis.field_slots f

let strides info =
  let l = info.Analysis.layout in
  (l.Analysis.count_slots * l.Analysis.value_slots, l.Analysis.count_slots)

(* The §4.1 value this row encodes, before any cross handling: gated by
   the non-cross row predicates (dest + shared edge columns). *)
let row_payload info ~dest ~edge =
  let ctx = { Semantics.self = dest (* unused by non-cross atoms *); dest; edge } in
  let non_cross_ok =
    List.for_all
      (fun p -> is_cross p || Semantics.eval_pred p ctx)
      (conjuncts info.Analysis.query.Ast.where)
  in
  if not non_cross_ok then 0
  else begin
    let agg =
      match info.Analysis.query.Ast.output with Ast.Histo a -> a | Ast.Gsum { num; _ } -> num
    in
    let s =
      match agg with
      | Ast.Count -> 1
      | Ast.Sum c -> (
        let raw =
          match (c.Ast.group, c.Ast.field, edge) with
          | Ast.Dest, Ast.Inf, _ -> Some (if dest.Schema.infected then 1 else 0)
          | Ast.Dest, Ast.Age, _ -> Some dest.Schema.age
          | Ast.Dest, Ast.T_inf, _ -> dest.Schema.t_inf
          | Ast.Edge, Ast.Duration, Some e -> Some e.Schema.duration_min
          | Ast.Edge, Ast.Contacts, Some e -> Some e.Schema.contacts
          | Ast.Edge, Ast.Last_contact, Some e -> Some e.Schema.last_contact
          | Ast.Self, _, _
          | ( Ast.Dest,
              (Ast.Duration | Ast.Contacts | Ast.Last_contact | Ast.Location | Ast.Setting),
              _ )
          | Ast.Edge, (Ast.Inf | Ast.T_inf | Ast.Age | Ast.Location | Ast.Setting), _
          | Ast.Edge, (Ast.Duration | Ast.Contacts | Ast.Last_contact), None ->
            None
        in
        match raw with Some v -> Analysis.bucketize c.Ast.field v | None -> 0)
    in
    let _, count_stride = strides info in
    if Semantics.is_ratio info then (s * count_stride) + 1 else s
  end

(* The destination's bucket in the cross field, if defined. *)
let cross_bucket field (dest : Schema.vertex_data) =
  match field with
  | Ast.T_inf -> Option.map (Analysis.bucketize Ast.T_inf) dest.Schema.t_inf
  | Ast.Age -> Some (Analysis.bucketize Ast.Age dest.Schema.age)
  | Ast.Inf | Ast.Duration | Ast.Contacts | Ast.Last_contact | Ast.Location | Ast.Setting -> None

(* A synthetic destination whose cross-field bucket is [v]; used by the
   origin to evaluate cross predicates position by position. *)
let synthetic_dest field v : Schema.vertex_data =
  match field with
  | Ast.T_inf -> { Schema.infected = true; t_inf = Some v; age = 0; household = 0 }
  | Ast.Age -> { Schema.infected = false; t_inf = None; age = v * 10; household = 0 }
  | Ast.Inf | Ast.Duration | Ast.Contacts | Ast.Last_contact | Ast.Location | Ast.Setting ->
    failwith "Contribution: unsupported cross field"

(* ------------------------------------------------------------------ *)
(* Building                                                            *)
(* ------------------------------------------------------------------ *)

let encrypt_with_proof srs ctx rng pk exponent =
  let p = Bgv.params ctx in
  let pt =
    Plaintext.monomial ~plain_modulus:p.Params.plain_modulus ~degree:p.Params.degree
      ~exponent
  in
  let seed = Rng.int64 rng in
  let ct = Bgv.encrypt ctx (Rng.create seed) pk pt in
  match Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed ct with
  | Some proof -> (ct, proof)
  | None -> assert false (* honest monomials are always admissible *)

let encrypt_zero_with_proof srs ctx rng pk =
  let p = Bgv.params ctx in
  let pt = Plaintext.zero ~plain_modulus:p.Params.plain_modulus ~degree:p.Params.degree in
  let seed = Rng.int64 rng in
  let ct = Bgv.encrypt ctx (Rng.create seed) pk pt in
  match Zkp.prove_contribution srs ctx pk ~plaintext:pt ~seed ct with
  | Some proof -> (ct, proof)
  | None -> assert false

let build srs ctx rng pk info ~dest ~edge =
  let payload = row_payload info ~dest ~edge in
  match cross_field info with
  | None ->
    let ct, proof = encrypt_with_proof srs ctx rng pk payload in
    { ciphertexts = [| ct |]; proofs = [| proof |] }
  | Some field ->
    let l = Analysis.field_slots field in
    let m = cross_bucket field dest in
    let pairs =
      Array.init l (fun v ->
          let e = match m with Some b when Int.equal b v -> payload | _ -> 0 in
          encrypt_with_proof srs ctx rng pk e)
    in
    { ciphertexts = Array.map fst pairs; proofs = Array.map snd pairs }

let build_malicious ctx rng pk info ~exponent ~coeff =
  let p = Bgv.params ctx in
  let coeffs = Array.make (exponent + 1) 0 in
  coeffs.(exponent) <- coeff;
  let pt = Plaintext.create ~plain_modulus:p.Params.plain_modulus coeffs in
  let n = sequence_length info in
  let pairs =
    Array.init n (fun _ -> (Bgv.encrypt ctx rng pk pt, Zkp.forge rng))
  in
  { ciphertexts = Array.map fst pairs; proofs = Array.map snd pairs }

let to_bytes t =
  let buf = Buffer.create 4096 in
  let add_framed b =
    let hdr = Bytes.create 4 in
    Bytes.set_int32_le hdr 0 (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf hdr;
    Buffer.add_bytes buf b
  in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (Array.length t.ciphertexts));
  Buffer.add_bytes buf hdr;
  Array.iter (fun ct -> add_framed (Bgv.serialize ct)) t.ciphertexts;
  Array.iter (fun p -> add_framed (Zkp.proof_to_bytes p)) t.proofs;
  Buffer.to_bytes buf

(* Serialization is canonical (fixed framing, deterministic ciphertext
   encoding), so wire equality is structural equality. *)
let equal a b = Bytes.equal (to_bytes a) (to_bytes b)

let of_bytes ctx data =
  let pos = ref 0 and len = Bytes.length data in
  let read_framed () =
    if !pos + 4 > len then raise Exit;
    let l = Int32.to_int (Bytes.get_int32_le data !pos) in
    pos := !pos + 4;
    if l < 0 || !pos + l > len then raise Exit;
    let b = Bytes.sub data !pos l in
    pos := !pos + l;
    b
  in
  try
    if len < 4 then raise Exit;
    let n = Int32.to_int (Bytes.get_int32_le data 0) in
    pos := 4;
    if n < 1 || n > 64 then raise Exit;
    let cts =
      Array.init n (fun _ ->
          match Bgv.deserialize ctx (read_framed ()) with Some ct -> ct | None -> raise Exit)
    in
    let proofs =
      Array.init n (fun _ ->
          match Zkp.proof_of_bytes (read_framed ()) with Some p -> p | None -> raise Exit)
    in
    if !pos <> len then raise Exit;
    Some { ciphertexts = cts; proofs }
  with Exit -> None

let wire_size ctx info =
  let p = Bgv.params ctx in
  (* Mirror of Bgv.serialize: component count header, then per
     component a representation tag and a row count, and per row a
     length plus degree 4-byte residues; two components for a fresh
     ciphertext. *)
  let per_ct = 4 + (2 * (4 + 4 + (p.Params.levels * (4 + (p.Params.degree * 4))))) in
  4 + (sequence_length info * ((4 + per_ct) + (4 + 64)))

let verify srs ctx info t =
  Array.length t.ciphertexts = sequence_length info
  && Array.length t.proofs = Array.length t.ciphertexts
  && Array.for_all2
       (fun ct proof -> Zkp.verify_contribution srs ctx ct proof)
       t.ciphertexts t.proofs

(* ------------------------------------------------------------------ *)
(* Origin-side aggregation                                             *)
(* ------------------------------------------------------------------ *)

let cross_conjuncts info = List.filter is_cross (conjuncts info.Analysis.query.Ast.where)

(* For a cross query: does bucket position v of this row pass the cross
   predicates, and which group does it land in? *)
let position_selected info field ~self ~edge v =
  let ctx = { Semantics.self; dest = synthetic_dest field v; edge } in
  if List.for_all (fun p -> Semantics.eval_pred p ctx) (cross_conjuncts info) then
    Semantics.accumulation_group info ctx
  else None

let aggregate_subtree srs ~own ~children =
  let inputs = match own with Some ct -> ct :: children | None -> children in
  match inputs with
  | [] -> Error "empty subtree"
  | _ -> (
    let product = Bgv.mul_many inputs in
    match
      Zkp.prove_transcript srs ~label:"subtree-aggregation" ~context:Bytes.empty ~inputs
        ~output:product ~recompute:Bgv.mul_many
    with
    | Some proof -> Ok (product, proof)
    | None -> Error "subtree transcript proof failed")

(* A factor of one group's product, described by indices into the flat
   input-ciphertext list so the whole aggregation can be re-executed
   deterministically by the transcript prover. *)
type factor_spec =
  | Direct of int
  | Corrected of int list  (* selected subsequence; correction = |S| - 1 *)

let aggregate_origin srs ctx rng pk info ~self ~rows =
  let t_mod = Bgv.plain_modulus ctx in
  let ring_degree = (Bgv.params ctx).Params.degree in
  let group_stride, _ = strides info in
  let groups = info.Analysis.layout.Analysis.group_count in
  if not (Semantics.origin_gate info self) then begin
    (* §4.4 final processing: a gated-out origin contributes Enc(0). *)
    let ct, proof = encrypt_zero_with_proof srs ctx rng pk in
    Ok (ct, proof)
  end
  else begin
    let field = cross_field info in
    let self_grouped =
      match info.Analysis.group_kind with
      | Analysis.Group_none | Analysis.Group_self -> true
      | Analysis.Group_edge | Analysis.Group_cross _ -> false
    in
    let effective_groups = if self_grouped then 1 else groups in
    (* Flat input list: the origin's own-row ciphertext first, then
       every neighbor ciphertext, then empty-group fillers. *)
    let inputs = ref [] and n_inputs = ref 0 in
    let push ct =
      inputs := ct :: !inputs;
      incr n_inputs;
      !n_inputs - 1
    in
    (* The origin's own row: unlike neighbor rows, the origin holds both
       sides of every cross-column comparison, so it evaluates the full
       row predicate directly (no sequence needed). *)
    let own_ctx_row = { Semantics.self; dest = self; edge = None } in
    let own_exponent =
      let b = Semantics.row_value info own_ctx_row in
      if Semantics.is_ratio info then begin
        let _, count_stride = strides info in
        (b * count_stride) + if Semantics.row_passes info own_ctx_row then 1 else 0
      end
      else b
    in
    let own_ct, _own_proof = encrypt_with_proof srs ctx rng pk own_exponent in
    let own_idx = push own_ct in
    let own_group = Semantics.accumulation_group info own_ctx_row in
    let specs = Array.make effective_groups [] in
    let add_spec g s = specs.(g) <- s :: specs.(g) in
    (match own_group with
    | Some g when g >= 0 && g < effective_groups -> add_spec g (Direct own_idx)
    | Some _ | None -> ());
    let problem = ref None in
    List.iter
      (fun (edge, (row : t)) ->
        match field with
        | None -> (
          let idx0 = push row.ciphertexts.(0) in
          let ctx_row = { Semantics.self; dest = self (* unused *); edge } in
          match Semantics.accumulation_group info ctx_row with
          | Some g when g >= 0 && g < effective_groups -> add_spec g (Direct idx0)
          | Some _ | None -> ())
        | Some field ->
          if Array.length row.ciphertexts <> Analysis.field_slots field then
            problem := Some "sequence length mismatch"
          else begin
            let idxs = Array.map push row.ciphertexts in
            for g = 0 to effective_groups - 1 do
              let selected = ref [] in
              for v = Array.length row.ciphertexts - 1 downto 0 do
                match position_selected info field ~self ~edge v with
                | Some g' when g' = g -> selected := idxs.(v) :: !selected
                | Some _ | None -> ()
              done;
              if !selected <> [] then add_spec g (Corrected !selected)
            done
          end)
      rows;
    (* Empty groups still report the (s=0, c=0) bin: fill with a fresh
       Enc(x^0). *)
    let fillers =
      Array.init effective_groups (fun g ->
          if specs.(g) = [] then begin
            let ct, _ = encrypt_with_proof srs ctx rng pk 0 in
            let idx = push ct in
            add_spec g (Direct idx);
            Some idx
          end
          else None)
    in
    ignore fillers;
    match !problem with
    | Some e -> Error e
    | None ->
      let input_arr = Array.of_list (List.rev !inputs) in
      (* The deterministic aggregation: replayed by the prover. *)
      let compute (cts : Bgv.ciphertext list) =
        let arr = Array.of_list cts in
        let factor = function
          | Direct i -> arr.(i)
          | Corrected [] -> assert false
          | Corrected (i :: rest) ->
            let sum = List.fold_left (fun acc j -> Bgv.add acc arr.(j)) arr.(i) rest in
            Bgv.sub_plain ctx sum
              (Plaintext.create ~plain_modulus:t_mod [| List.length rest |])
        in
        let shifted g =
          let product = Bgv.mul_many (List.rev_map factor specs.(g)) in
          let g_shift = if self_grouped then Semantics.origin_group info self else g in
          if g_shift = 0 then product
          else
            Bgv.mul_plain ctx product
              (Plaintext.monomial ~plain_modulus:t_mod ~degree:ring_degree
                 ~exponent:(g_shift * group_stride))
        in
        let rec sum_groups g acc =
          if g >= effective_groups then acc else sum_groups (g + 1) (Bgv.add acc (shifted g))
        in
        sum_groups 1 (shifted 0)
      in
      let total = compute (Array.to_list input_arr) in
      (match
         Zkp.prove_transcript srs ~label:"origin-aggregation"
           ~context:(Bytes.of_string info.Analysis.query.Ast.name)
           ~inputs:(Array.to_list input_arr) ~output:total ~recompute:compute
       with
      | Some proof -> Ok (total, proof)
      | None -> Error "transcript proof failed")
  end
