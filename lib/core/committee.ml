module Rng = Mycelium_util.Rng
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Plaintext = Mycelium_bgv.Plaintext
module Shamir = Mycelium_secrets.Shamir
module Vsr = Mycelium_secrets.Vsr
module Threshold = Mycelium_secrets.Threshold
module Dp = Mycelium_dp.Dp
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Ast = Mycelium_query.Ast
module Zkp = Mycelium_zkp.Zkp
module Obs = Mycelium_obs.Obs

type t = {
  ctx : Bgv.ctx;
  size : int;
  thresh : int;
  member_ids : int array;  (* device ids; -1 for genesis parties *)
  shares : Threshold.key_share array;
  generation : int;
}

let committee_size t = t.size
let threshold t = t.thresh
let members t = t.member_ids
let generation t = t.generation

let genesis ctx rng ~size ~threshold ~relin_degree =
  if threshold + 1 > size then invalid_arg "Committee.genesis: threshold too high";
  let sk, pk = Bgv.keygen ctx rng in
  let relin = Bgv.relin_keygen ctx rng sk ~max_degree:relin_degree in
  let srs = Zkp.setup rng in
  let shares = Threshold.share_secret_key ctx rng ~threshold ~parties:size sk in
  (* The genesis parties are outside the device population. *)
  let t =
    {
      ctx;
      size;
      thresh = threshold;
      member_ids = Array.make size (-1);
      shares;
      generation = 0;
    }
  in
  (t, pk, relin, srs)

let rotate t rng ~population =
  let member_ids = Rng.sample_without_replacement rng t.size population in
  (* Any threshold+1 current holders re-share to the new committee. *)
  let dealers = Array.to_list (Array.sub t.shares 0 (t.thresh + 1)) in
  let shares = Vsr.redistribute_rq rng ~new_threshold:t.thresh ~new_parties:t.size dealers in
  { t with member_ids; shares; generation = t.generation + 1 }

type release = {
  noisy_bins : float array;
  result : Mycelium_query.Semantics.result;
  participants : int array;
  attempts : int;
}

(* Keep sampling reachable members until threshold+1 answer or we give
   up: "we simply have to wait for some amount of time before enough
   members are back, and retry" (§6.5). Crashed members never answer:
   they are out of the candidate pool before churn is even sampled. *)
let rec recruit rng ~candidates ~needed ~churn ~max_attempts ~attempt =
  if attempt > max_attempts then None
  else begin
    let online = List.filter (fun _ -> not (Rng.bernoulli rng churn)) candidates in
    if List.length online >= needed then begin
      let arr = Array.of_list online in
      Rng.shuffle rng arr;
      Some (Array.sub arr 0 needed, attempt)
    end
    else recruit rng ~candidates ~needed ~churn ~max_attempts ~attempt:(attempt + 1)
  end

(* The §4.4 final processing, shared by the single-query and batched
   decryption paths: calibrated Laplace noise per histogram bin for
   HISTO, per group sum for GSUM, drawn from [noise_rng]. *)
let release_from_counts ~noise_rng ~info ~epsilon ~participants ~attempts counts =
  let sensitivity = info.Analysis.sensitivity in
  match info.Analysis.query.Ast.output with
  | Ast.Histo _ ->
    (* Laplace noise on every bin before anything leaves the MPC. *)
    let noisy_bins = Dp.release_histogram noise_rng ~sensitivity ~epsilon counts in
    Ok { noisy_bins; result = Semantics.decode info noisy_bins; participants; attempts }
  | Ast.Gsum _ ->
    (* The committee computes the clipped sums from the exact bins
       (§4.4's formula) and noises each group's output once. *)
    let exact = Array.map float_of_int counts in
    (match Semantics.decode info exact with
    | Semantics.Sums groups ->
      let noised =
        Array.map
          (fun (label, v) -> (label, Dp.release_sum noise_rng ~sensitivity ~epsilon v))
          groups
      in
      Ok { noisy_bins = exact; result = Semantics.Sums noised; participants; attempts }
    | Semantics.Histogram _ -> Error "decode mismatch: GSUM query decoded to histogram")

let recruit_and_decrypt ?(churn = 0.) ?(max_attempts = 10) ?(excluded = []) t rng ctx ct =
  let candidates =
    List.filter (fun i -> not (List.exists (Int.equal i) excluded)) (List.init t.size Fun.id)
  in
  match recruit rng ~candidates ~needed:(t.thresh + 1) ~churn ~max_attempts ~attempt:1 with
  | None -> Error "committee liveness failure: too few members reachable"
  | Some (idx, attempts) ->
    let live = List.map (fun i -> t.shares.(i)) (Array.to_list idx) in
    (match Threshold.decrypt ctx rng ~threshold:t.thresh ~live ct with
    | Error e -> Error e
    | Ok (pt, participants) -> Ok (pt, participants, attempts))

let decrypt_and_release ?churn ?max_attempts ?excluded t rng ctx ~info ~epsilon ct =
  Obs.span "committee.decrypt"
    ~attrs:[ ("size", Obs.Json.Int t.size); ("threshold", Obs.Json.Int t.thresh) ]
  @@ fun () ->
  if Bgv.degree ct <> 1 then Error "ciphertext must be relinearized to degree 1"
  else
    match recruit_and_decrypt ?churn ?max_attempts ?excluded t rng ctx ct with
    | Error e -> Error e
    | Ok (pt, participants, attempts) ->
      let total_bins = info.Analysis.layout.Analysis.total_bins in
      let counts = Array.init total_bins (fun i -> Plaintext.coeff pt i) in
      release_from_counts ~noise_rng:rng ~info ~epsilon ~participants ~attempts counts

type batch_member = {
  b_info : Analysis.info;
  b_epsilon : float;
  b_noise_rng : Rng.t;
}

(* One threshold-decryption session for a whole batch: member [i]'s
   (relinearized) aggregate is shifted into its own window of the
   plaintext ring by a homomorphic multiplication with the monomial
   x^offset_i — exponent arithmetic moves bin b to bin offset_i + b —
   the shifted ciphertexts are summed, and the single combined
   ciphertext is decrypted by one recruited committee. The coefficient
   vector of the decrypted plaintext is the concatenation of every
   member's exact bins, sliced back apart per member.

   Exactness is what makes the sharing safe: Shamir reconstruction
   yields the same plaintext for any threshold+1 live shares, and the
   windows are disjoint with no negacyclic wrap (enforced by the
   [sum total_bins <= N] check), so each member's sliced counts are
   bit-identical to what its own solo decryption session would have
   produced. Per-member DP noise then comes from the member's own
   [b_noise_rng], never a shared stream — so released bytes cannot
   depend on who else shared the session. *)
let decrypt_batch ?churn ?max_attempts ?excluded t rng ctx ~members =
  Obs.span "committee.decrypt_batch"
    ~attrs:
      [
        ("size", Obs.Json.Int t.size);
        ("threshold", Obs.Json.Int t.thresh);
        ("members", Obs.Json.Int (List.length members));
      ]
  @@ fun () ->
  match members with
  | [] -> invalid_arg "Committee.decrypt_batch: empty batch"
  | members ->
    if List.exists (fun (_, ct) -> Bgv.degree ct <> 1) members then
      Error "ciphertext must be relinearized to degree 1"
    else begin
      let ring_degree = (Bgv.params ctx).Params.degree in
      let plain_modulus = Bgv.plain_modulus ctx in
      (* Disjoint plaintext windows: member i owns
         [offset_i, offset_i + total_bins_i). *)
      let offsets =
        let next = ref 0 in
        List.map
          (fun (m, _) ->
            let o = !next in
            next := o + m.b_info.Analysis.layout.Analysis.total_bins;
            o)
          members
      in
      let total =
        List.fold_left
          (fun acc (m, _) -> acc + m.b_info.Analysis.layout.Analysis.total_bins)
          0 members
      in
      if total > ring_degree then
        Error
          (Printf.sprintf
             "batch overflows the plaintext ring: %d bins > degree %d" total
             ring_degree)
      else begin
        let combined =
          List.fold_left2
            (fun acc (_, ct) offset ->
              let shifted =
                if offset = 0 then ct
                else
                  Bgv.mul_plain ctx ct
                    (Plaintext.monomial ~plain_modulus ~degree:ring_degree
                       ~exponent:offset)
              in
              match acc with None -> Some shifted | Some a -> Some (Bgv.add a shifted))
            None members offsets
        in
        let combined = Option.get combined in
        match recruit_and_decrypt ?churn ?max_attempts ?excluded t rng ctx combined with
        | Error e -> Error e
        | Ok (pt, participants, attempts) ->
          let releases =
            List.map2
              (fun (m, _) offset ->
                let bins = m.b_info.Analysis.layout.Analysis.total_bins in
                let counts = Array.init bins (fun i -> Plaintext.coeff pt (offset + i)) in
                release_from_counts ~noise_rng:m.b_noise_rng ~info:m.b_info
                  ~epsilon:m.b_epsilon ~participants ~attempts counts)
              members offsets
          in
          (* Either every member releases or the whole session fails. *)
          let rec collect acc = function
            | [] -> Ok (List.rev acc)
            | Ok r :: rest -> collect (r :: acc) rest
            | Error e :: _ -> Error e
          in
          collect [] releases
      end
    end

let reconstruct_for_tests t ctx =
  Threshold.reconstruct_secret_key ctx
    (Array.to_list (Array.sub t.shares 0 (t.thresh + 1)))
