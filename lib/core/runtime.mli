(** The end-to-end Mycelium system (§4, §5): devices on a contact
    graph, a global BGV key held in committee shares, the aggregator,
    and the full query pipeline —

    analyst query -> parse/analyze -> budget charge -> flooding ->
    per-row encrypted contributions with well-formedness ZKPs ->
    spanning-tree local aggregation with transcript ZKPs -> aggregator
    verification + summation tree -> deferred relinearization ->
    committee threshold decryption with in-MPC Laplace noise ->
    released result -> committee rotation (VSR).

    By default the contributions move over an abstract reliable channel
    (the mixnet is exercised and measured separately); pass
    [route_through_mixnet] to push every 1-hop contribution through the
    full onion-routing simulator, where churn turns into the §6.3
    default-value behaviour. *)

type config = {
  params : Mycelium_bgv.Params.t;
  committee_size : int;
  committee_threshold : int;
  epsilon_budget : float;
  degree_bound : int;  (** d; must be >= the graph's max degree *)
  seed : int64;
  byzantine_fraction : float;
      (** fraction of devices submitting over-weighted contributions
          with forged proofs (§4.6's attack) *)
  route_through_mixnet : Mycelium_mixnet.Sim.config option;
  relin_degree : int option;
      (** relinearization-key degree bound; default d+3 covers 1-hop *)
  accounting : Mycelium_dp.Dp.accounting;
      (** budget accountant: Basic sequential composition (the paper's
          conservative default) or Advanced composition (§4.4's
          suggested refinement) *)
  faults : Mycelium_faults.Fault_plan.t option;
      (** deterministic fault plan injected into every query this
          runtime executes (chaos testing); [None] — the default —
          disables every injection point. Under a plan the pipeline
          degrades per §6.3: churned devices' contributions are
          substituted with default values (rows go missing, offline
          origins submit an encryption of zero so the summation-tree
          shape is stable), droppable channel sends retry with
          exponential backoff, crashed committee members are excluded
          and threshold decryption proceeds with any threshold+1 live
          shares, and aggregator restarts rebuild the summation tree
          from its durable leaves. What actually fired is returned in
          [query_result.degradation]. *)
  domains : int;
      (** domain count for the parallel work pool threaded through
          contribution build/verify, RNS/NTT limb ops, summation-tree
          construction and mixnet round processing (1 = sequential;
          the default). The [MYCELIUM_DOMAINS] environment variable
          overrides this. Query results, DP noise and degradation
          reports are byte-identical at any domain count: all task
          randomness comes from pre-split seed streams and every
          reduction uses a fixed combine order. *)
  trace : bool;
      (** enable the lib/obs tracing + metrics registry for this
          process (the [MYCELIUM_TRACE] environment variable also
          enables it); default [false]. Spans cover the pipeline
          phases ([runtime.init], [query.gather], [query.aggregate],
          [query.summation], [query.decrypt]) and the layers below
          them — see DESIGN.md §8 for the taxonomy. Observability
          never affects results: query results, DP noise and
          degradation reports are byte-identical with tracing on or
          off. *)
  ledger : string option;
      (** append one audit record per executed query — budget charge,
          clipping and degree bounds, per-phase wall-clock, degradation
          report, mixnet bytes and committee shares used — to this
          JSONL file (schema ["mycelium-ledger/1"]; DESIGN.md §13);
          default [None]. The [MYCELIUM_LEDGER] environment variable
          overrides it. Summarize with [mycelium audit <file>]. Like
          tracing, the ledger observes the pipeline and never feeds
          back into results. *)
}

val default_config : config
(** test_medium BGV parameters, committee of 10 with threshold 4,
    budget 10, d=6, honest devices, abstract channel, no faults. *)

(* lint: allow interface — the runtime is a stateful orchestrator (graph, keys, rng, pools); handles are compared by identity only *)
type t

val init : config -> Mycelium_graph.Contact_graph.t -> t
(** If the graph's maximum degree exceeds [degree_bound] (possible for
    graphs loaded from external data rather than
    {!Mycelium_graph.Contact_graph.generate}), it is deterministically
    clipped with {!Mycelium_graph.Contact_graph.clip_to_degree_bound};
    {!graph} returns the clipped graph the queries actually run over. *)

val public_key : t -> Mycelium_bgv.Bgv.public_key
val config : t -> config
val committee : t -> Committee.t
val budget : t -> Mycelium_dp.Dp.budget
val graph : t -> Mycelium_graph.Contact_graph.t

type query_error =
  | Parse_error of string
  | Analysis_error of string
  | Infeasible of string
  | Budget_exhausted of float
  | Pipeline_error of string

type query_result = {
  info : Mycelium_query.Analysis.info;
  result : Mycelium_query.Semantics.result;
  noisy_bins : float array;
  discarded_contributions : int;  (** rows rejected by ZKP checks *)
  origins_included : int;
  committee_generation : int;
  committee_shares : int;
      (** decryption shares actually combined for the release (>=
          threshold + 1; fewer than the committee size when crashed
          members were excluded) *)
  mixnet_losses : int;  (** rows lost in transit (mixnet mode only) *)
  mixnet_bytes : int;
      (** bytes deposited at aggregator mailboxes for this query's
          round (0 over the abstract channel) *)
  c_rounds : int;
      (** C-rounds the query's communication occupies: 2*hops
          vertex-program rounds of k_mix+1 C-rounds each (§3.5); with
          hour-long rounds, the wall-clock the paper quotes in §6.3 *)
  degradation : Mycelium_faults.Injector.report;
      (** what the fault plan actually injected and how the pipeline
          degraded; {!Mycelium_faults.Injector.empty_report} when
          [config.faults] is [None]. Deterministic: the same config,
          graph and query reproduce this report exactly. *)
}

val run_query : ?epsilon:float -> t -> string -> (query_result, query_error) result
(** Parse and execute a query (default epsilon 1.0). On success the
    committee rotates. *)

val run_query_ast :
  ?epsilon:float -> t -> Mycelium_query.Ast.t -> (query_result, query_error) result

val exact_bins_for_tests : t -> Mycelium_query.Analysis.info -> int array
(** The plaintext oracle on the same graph (for equality checks with
    epsilon = infinity). *)

(** {2 Batched serving entry points (DESIGN.md §14)}

    The serving layer ({!Mycelium_serve}) executes admitted queries in
    batches: one mixnet round-trip gathers the rows of every 1-hop
    member at once, aggregation stays per member, and one committee
    threshold-decryption session releases the whole batch. The member
    contract that makes batching invisible in the released bytes: a
    member's DP noise comes from its own [bi_noise_seed] stream and its
    injected transit faults from its own [bi_fault_round] coordinate,
    both pure functions of the member's identity — never of the batch
    composition, the physical round counter or the shared session. *)

type prepared
(** A member's gather + aggregation output, ready for (repeated)
    decryption: the relinearized degree-1 aggregate plus the counters
    its execution produced. This is what the serving layer's
    encrypted-aggregate cache stores — the ciphertext stays valid
    across committee rotations because VSR redistributes shares of the
    same key. *)

val prepared_info : prepared -> Mycelium_query.Analysis.info

type batch_item = {
  bi_query : Mycelium_query.Ast.t;
  bi_epsilon : float;
      (** charged against {!budget} at admission, in submission order;
          [infinity] keeps the legacy "release exactly, never charged"
          debug semantics (the serving layer refuses it without an
          explicit override) *)
  bi_noise_seed : int64;
      (** seed of the member's private DP-noise stream *)
  bi_fault_round : int;
      (** the member's logical transit-fault coordinate, fed to
          {!Mycelium_faults.Fault_plan.send_dropped} in place of the
          shared physical mixnet round *)
  bi_cached : prepared option;
      (** a cache hit: skip gather and aggregation, go straight to the
          shared decryption session *)
}

val validate_query :
  t -> Mycelium_query.Ast.t -> (Mycelium_query.Analysis.info, query_error) result
(** The static admission checks of the pipeline (analysis, parameter
    feasibility, predicate placement, multi-hop restrictions), without
    executing anything. Pure: never touches the budget or any Rng
    stream. *)

val run_batch :
  t -> batch_item list -> (query_result * prepared, query_error) result list
(** Execute a batch end-to-end; the result list is parallel to the
    input. Per member: admission (validation, then the budget charge in
    submission order — the deterministic rejection order), gather
    (1-hop members share one mixnet round when the runtime routes
    through the mixnet), per-member aggregation, then one shared
    {!Committee.decrypt_batch} session and a single committee rotation.
    Each member gets its own [mycelium-ledger/1] row with its own
    charged epsilon; the genuinely shared phase durations (gather
    round-trip, decryption session) are attributed proportionally —
    by frame-byte share for gather, by plaintext-window share for
    decryption — while per-member phases are timed individually.
    Returns the member's {!prepared} so a caller can cache it. *)
