(** The Orchard-style summation tree (§4.2): the aggregator sums the
    origin ciphertexts up a binary tree and commits to every node, so
    each device can verify — with logarithmically many checks — that
    its contribution was included in the final sum exactly once.

    Every node carries the homomorphic sum of its subtree's
    ciphertexts; the commitment tree hashes (ciphertext, child hashes)
    pairs. A device audits its own path: its leaf appears at its
    claimed position, every node on the path is the sum of its
    children, and the root matches what the aggregator posted to the
    bulletin board. A cheating aggregator that drops, duplicates or
    alters a contribution fails the audit of some honest device. *)

type t

val build : Mycelium_bgv.Bgv.ciphertext array -> t
(** Sum the leaves pairwise up to the root. At least one leaf. *)

val root_sum : t -> Mycelium_bgv.Bgv.ciphertext
(** The final aggregate: equal to folding {!Mycelium_bgv.Bgv.add} over
    the leaves. *)

val equal : t -> t -> bool
(** Root-hash equality; the hash commits to every leaf and the shape. *)

val root_hash : t -> bytes
(** Commitment for the bulletin board. *)

val leaf_count : t -> int

val leaves : t -> Mycelium_bgv.Bgv.ciphertext array
(** The leaf ciphertexts in insertion order — the aggregator's durable
    state across a crash (each leaf is a received, verified
    contribution spooled before tree construction). *)

val rebuild : t -> t
(** Crash recovery: reconstruct the whole tree from {!leaves} alone.
    [build] is deterministic, so
    [root_hash (rebuild t) = root_hash t] and the recovered aggregator
    answers audits identically — the invariant the aggregator-restart
    fault class checks. *)

type audit_path = {
  index : int;
  steps : (Mycelium_bgv.Bgv.ciphertext * bytes) option list;
      (** bottom-up: the sibling node's ciphertext and commitment hash,
          or [None] where an odd node was promoted unpaired *)
}

val audit : t -> int -> audit_path
(** The aggregator's response to device [index]'s audit request. *)

val verify_audit :
  Mycelium_bgv.Bgv.ciphertext ->
  root_hash:bytes ->
  root_sum:Mycelium_bgv.Bgv.ciphertext ->
  leaf_count:int ->
  audit_path ->
  bool
(** [verify_audit my_contribution ~root_hash ~root_sum ~leaf_count path]
    is the device-side check: recompute the sums and commitments up the
    path from [my_contribution] and the claimed siblings; accept iff
    both the commitment chain ends in [root_hash] and the running sum
    ends in [root_sum]. *)
