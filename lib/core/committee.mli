(** Committee lifecycle (§4.2, §5): a genesis committee generates the
    BGV keys once and Shamir-shares the decryption key; each query is
    then decrypted by a randomly drawn committee of user devices, and
    ownership of the key moves committee-to-committee by verifiable
    secret redistribution — Orchard's per-query key generation is gone
    (Mycelium's second modification to Orchard).

    Decryption adds the differential-privacy noise *inside* the MPC,
    before anything reaches the aggregator. *)

(* lint: allow interface — a committee holds secret shares behind an abstract barrier; comparing two committees is never meaningful *)
type t

val committee_size : t -> int
val threshold : t -> int
val members : t -> int array
(** Device ids of the current committee. *)

val generation : t -> int
(** How many VSR hand-offs have happened (0 = genesis holders). *)

val genesis :
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  size:int ->
  threshold:int ->
  relin_degree:int ->
  t * Mycelium_bgv.Bgv.public_key * Mycelium_bgv.Bgv.relin_key * Mycelium_zkp.Zkp.srs
(** The genesis ceremony: BGV keygen, relinearization keys, the ZKP
    trusted setup, and the initial sharing. The secret key itself is
    discarded — from here on it exists only as shares. *)

val rotate : t -> Mycelium_util.Rng.t -> population:int -> t
(** Draw the next committee from the device population and hand the key
    over with VSR; the old committee's shares become useless (shares of
    different sharings do not mix). *)

type release = {
  noisy_bins : float array;
  result : Mycelium_query.Semantics.result;
  participants : int array;
  attempts : int;
      (** decryption rounds needed before enough members were reachable
          (1 when everyone answers; the Fig 8b liveness story) *)
}

val decrypt_and_release :
  ?churn:float ->
  ?max_attempts:int ->
  ?excluded:int list ->
  t ->
  Mycelium_util.Rng.t ->
  Mycelium_bgv.Bgv.ctx ->
  info:Mycelium_query.Analysis.info ->
  epsilon:float ->
  Mycelium_bgv.Bgv.ciphertext ->
  (release, string) result
(** Threshold-decrypt a relinearized aggregate, apply the §4.4 final
    processing with calibrated Laplace noise (per histogram bin for
    HISTO; per group sum for GSUM), and release. Each member is
    independently unreachable with probability [churn] (default 0);
    with fewer than threshold+1 present the committee "waits for some
    amount of time... and retries" (§6.5) up to [max_attempts]
    (default 10). [excluded] members (crashed, per the fault plan)
    never answer: decryption still succeeds with any threshold+1 of
    the remaining live shares. Fails if the ciphertext is not degree 1
    or liveness never recovers. *)

type batch_member = {
  b_info : Mycelium_query.Analysis.info;
  b_epsilon : float;
  b_noise_rng : Mycelium_util.Rng.t;
      (** the member's own noise stream — never shared across the
          batch, so a member's released bytes cannot depend on who
          else shared the decryption session *)
}

val decrypt_batch :
  ?churn:float ->
  ?max_attempts:int ->
  ?excluded:int list ->
  t ->
  Mycelium_util.Rng.t ->
  Mycelium_bgv.Bgv.ctx ->
  members:(batch_member * Mycelium_bgv.Bgv.ciphertext) list ->
  (release list, string) result
(** One committee threshold-decryption session shared by a whole batch:
    each member's relinearized aggregate is shifted into a disjoint
    window of the plaintext ring (homomorphic multiplication by the
    monomial x^offset), the shifted ciphertexts are summed, the single
    combined ciphertext is decrypted once, and the concatenated
    coefficient vector is sliced back apart per member. Threshold
    reconstruction is exact for any threshold+1 live shares and the
    windows cannot wrap (the call fails if the batch's total bin count
    exceeds the ring degree N), so each member's sliced counts — and
    therefore its noised release, drawn from its own [b_noise_rng] —
    are bit-identical to a solo {!decrypt_and_release} session seeded
    with the same noise stream. [rng] drives only recruitment and the
    decryption smudging noise, neither of which can move a released
    byte. Raises [Invalid_argument] on an empty batch. *)

val reconstruct_for_tests : t -> Mycelium_bgv.Bgv.ctx -> Mycelium_bgv.Bgv.secret_key
(** Rebuild the secret key from shares — the committee-capture failure
    mode, available so tests can compare against direct decryption. *)
