(** Device-side contribution construction and origin-side local
    aggregation (§4.3–§4.5), on real BGV ciphertexts.

    A destination vertex answering a query evaluates the row-level
    predicates it can see (its own columns plus the shared edge
    columns), and encrypts its contribution with the §4.1 encoding:
    - no cross-column comparison: one ciphertext, Enc(x^b) with b the
      gated aggregation value (0 when gated out — the multiplicative
      identity x^0);
    - with a cross-column comparison on a field with L buckets: a
      sequence of L ciphertexts, Enc(x^b) at the position of its own
      bucket and Enc(x^0) elsewhere (§4.5). The origin then sums the
      subsequence its own value selects and subtracts Enc(|S|-1),
      recovering Enc(x^b) or the neutral Enc(x^0).

    GSUM ratio queries pack b = s*count_stride + 1 so both numerator
    and denominator aggregate in one exponent.

    Every ciphertext ships with a §4.6 well-formedness proof; the
    origin's aggregation ships with a transcript proof. *)

type t = {
  ciphertexts : Mycelium_bgv.Bgv.ciphertext array;
      (** length = the Figure-6 sequence length *)
  proofs : Mycelium_zkp.Zkp.proof array;
}

val sequence_length : Mycelium_query.Analysis.info -> int

val build :
  Mycelium_zkp.Zkp.srs ->
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  Mycelium_bgv.Bgv.public_key ->
  Mycelium_query.Analysis.info ->
  dest:Mycelium_graph.Schema.vertex_data ->
  edge:Mycelium_graph.Schema.edge_data option ->
  t
(** What a destination device sends for one row. *)

val build_malicious :
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  Mycelium_bgv.Bgv.public_key ->
  Mycelium_query.Analysis.info ->
  exponent:int ->
  coeff:int ->
  t
(** A Byzantine contribution: an over-weighted value with forged
    proofs. The aggregator must reject it (§4.6). *)

val equal : t -> t -> bool
(** Wire-form equality; {!to_bytes} is canonical. *)

val to_bytes : t -> bytes
(** Wire form for routing through the mixnet. *)

val of_bytes : Mycelium_bgv.Bgv.ctx -> bytes -> t option

val wire_size : Mycelium_bgv.Bgv.ctx -> Mycelium_query.Analysis.info -> int
(** Serialized size of one row's contribution under the given
    parameters (sequence length x ciphertext size + proofs). *)

val verify :
  Mycelium_zkp.Zkp.srs -> Mycelium_bgv.Bgv.ctx -> Mycelium_query.Analysis.info -> t -> bool
(** Aggregator-side check of every element's proof. *)

val aggregate_subtree :
  Mycelium_zkp.Zkp.srs ->
  own:Mycelium_bgv.Bgv.ciphertext option ->
  children:Mycelium_bgv.Bgv.ciphertext list ->
  (Mycelium_bgv.Bgv.ciphertext * Mycelium_zkp.Zkp.proof, string) result
(** One step of the §4.4 spanning-tree aggregation: an interior vertex
    multiplies its own (already-proven) contribution with its
    children's partial products and proves the product to the
    aggregator. [own = None] models a vertex whose own contribution was
    discarded (its children still flow). Only for queries without §4.5
    sequences (multi-hop queries in the corpus have none). *)

val aggregate_origin :
  Mycelium_zkp.Zkp.srs ->
  Mycelium_bgv.Bgv.ctx ->
  Mycelium_util.Rng.t ->
  Mycelium_bgv.Bgv.public_key ->
  Mycelium_query.Analysis.info ->
  self:Mycelium_graph.Schema.vertex_data ->
  rows:(Mycelium_graph.Schema.edge_data option * t) list ->
  (Mycelium_bgv.Bgv.ciphertext * Mycelium_zkp.Zkp.proof, string) result
(** The origin's local aggregation over verified neighbor rows plus its
    own row: §4.5 sequence selection and correction, per-group routing
    and bin shifts, the §4.4 origin gate (Enc(0) when it fails), and
    the aggregation transcript proof. [rows] excludes the origin's own
    row — it is built internally (it knows its own data). *)
