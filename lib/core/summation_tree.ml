module Bgv = Mycelium_bgv.Bgv
module Sha256 = Mycelium_crypto.Sha256
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs

type node = { sum : Bgv.ciphertext; hash : bytes }

type t = { levels : node array array; n_leaves : int }

let leaf_hash ct =
  let ctx = Sha256.init () in
  Sha256.update ctx (Bytes.make 1 '\x00');
  Sha256.update ctx (Bgv.serialize ct);
  Sha256.finalize ctx

let node_hash sum left right =
  let ctx = Sha256.init () in
  Sha256.update ctx (Bytes.make 1 '\x01');
  Sha256.update ctx (Bgv.serialize sum);
  Sha256.update ctx left;
  Sha256.update ctx right;
  Sha256.finalize ctx

(* An unpaired node keeps its sum; its commitment is re-wrapped so the
   tree shape is committed too. *)
let promote_hash h =
  let ctx = Sha256.init () in
  Sha256.update ctx (Bytes.make 1 '\x02');
  Sha256.update ctx h;
  Sha256.finalize ctx

let build leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Summation_tree.build: no leaves";
  Obs.span "sumtree.build" ~attrs:[ ("leaves", Obs.Json.Int n) ] @@ fun () ->
  (* Sibling pairs within a level are independent (a sum plus a hash
     each); parallelise per pair index.  Levels stay strictly ordered,
     so the committed tree is identical at any domain count.

     Leaves arrive from deserialized contributions already in the NTT
     evaluation domain (encrypt produces Eval ciphertexts and the wire
     format preserves the tag), and Bgv.add is domain-preserving, so
     the whole tree aggregates with zero transforms; hashes commit to
     the tagged serialized bytes, which the deterministic pipeline
     reproduces exactly on rebuild and audit. *)
  let pool = Pool.default () in
  let level0 =
    Obs.span "sumtree.level" ~attrs:[ ("level", Obs.Json.Int 0); ("width", Obs.Json.Int n) ]
    @@ fun () -> Pool.map_array pool (fun ct -> { sum = ct; hash = leaf_hash ct }) leaves
  in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let w = Array.length level in
      let next =
        Obs.span "sumtree.level"
          ~attrs:
            [ ("level", Obs.Json.Int (List.length acc + 1));
              ("width", Obs.Json.Int ((w + 1) / 2)) ]
        @@ fun () ->
        Pool.init pool
          ((w + 1) / 2)
          (fun i ->
            if (2 * i) + 1 < w then begin
              let l = level.(2 * i) and r = level.((2 * i) + 1) in
              let sum = Bgv.add l.sum r.sum in
              { sum; hash = node_hash sum l.hash r.hash }
            end
            else begin
              let l = level.(2 * i) in
              { sum = l.sum; hash = promote_hash l.hash }
            end)
      in
      up (level :: acc) next
    end
  in
  { levels = Array.of_list (up [] level0); n_leaves = n }

let root t = t.levels.(Array.length t.levels - 1).(0)
let root_sum t = (root t).sum
let root_hash t = (root t).hash
let leaf_count t = t.n_leaves

let leaves t = Array.map (fun n -> n.sum) t.levels.(0)

(* The root hash commits to every leaf ciphertext and the tree shape,
   so hash equality is tree equality. *)
let equal a b = Bytes.equal (root_hash a) (root_hash b)

(* Restart recovery: the leaves are the aggregator's durable state
   (each is a received, verified contribution); everything above them
   is recomputed. build is deterministic, so the rebuilt root must
   commit to exactly the same tree. *)
let rebuild t = build (leaves t)

type audit_path = { index : int; steps : (Bgv.ciphertext * bytes) option list }

let audit t index =
  if index < 0 || index >= t.n_leaves then invalid_arg "Summation_tree.audit: bad index";
  let steps = ref [] in
  let pos = ref index in
  for level = 0 to Array.length t.levels - 2 do
    let w = Array.length t.levels.(level) in
    let sibling = !pos lxor 1 in
    if sibling < w then begin
      let s = t.levels.(level).(sibling) in
      steps := Some (s.sum, s.hash) :: !steps
    end
    else steps := None :: !steps;
    pos := !pos / 2
  done;
  { index; steps = List.rev !steps }

let verify_audit my_ct ~root_hash:expected_hash ~root_sum:expected_sum ~leaf_count path =
  if path.index < 0 || path.index >= leaf_count then false
  else begin
    (* The number of levels is determined by leaf_count, so a malicious
       aggregator cannot shorten the path. *)
    let rec depth acc w = if w <= 1 then acc else depth (acc + 1) ((w + 1) / 2) in
    let expected_steps = depth 0 leaf_count in
    if List.length path.steps <> expected_steps then false
    else begin
      let sum = ref my_ct and hash = ref (leaf_hash my_ct) in
      let pos = ref path.index and width = ref leaf_count in
      let ok = ref true in
      List.iter
        (fun step ->
          (match step with
          | Some (sibling_sum, sibling_hash) ->
            if !pos lxor 1 >= !width then ok := false
            else if !pos land 1 = 0 then begin
              let s = Bgv.add !sum sibling_sum in
              hash := node_hash s !hash sibling_hash;
              sum := s
            end
            else begin
              let s = Bgv.add sibling_sum !sum in
              hash := node_hash s sibling_hash !hash;
              sum := s
            end
          | None ->
            (* Promotion is only legal for the unpaired last node. *)
            if not (!pos land 1 = 0 && !pos = !width - 1) then ok := false
            else hash := promote_hash !hash);
          pos := !pos / 2;
          width := (!width + 1) / 2)
        path.steps;
      !ok
      && Bytes.equal !hash expected_hash
      && Bytes.equal (Bgv.serialize !sum) (Bgv.serialize expected_sum)
    end
  end
