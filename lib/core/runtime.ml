module Rng = Mycelium_util.Rng
module Cg = Mycelium_graph.Contact_graph
module Schema = Mycelium_graph.Schema
module Bgv = Mycelium_bgv.Bgv
module Params = Mycelium_bgv.Params
module Dp = Mycelium_dp.Dp
module Zkp = Mycelium_zkp.Zkp
module Merkle = Mycelium_crypto.Merkle
module Analysis = Mycelium_query.Analysis
module Semantics = Mycelium_query.Semantics
module Parser = Mycelium_query.Parser
module Ast = Mycelium_query.Ast
module Sim = Mycelium_mixnet.Sim
module Bulletin = Mycelium_mixnet.Bulletin
module Fault_plan = Mycelium_faults.Fault_plan
module Injector = Mycelium_faults.Injector
module Pool = Mycelium_parallel.Pool
module Obs = Mycelium_obs.Obs

type config = {
  params : Params.t;
  committee_size : int;
  committee_threshold : int;
  epsilon_budget : float;
  degree_bound : int;
  seed : int64;
  byzantine_fraction : float;
  route_through_mixnet : Sim.config option;
  relin_degree : int option;
      (** override the relinearization-key degree bound (multi-hop
          queries grow products to the neighborhood-ball size) *)
  accounting : Dp.accounting;
  faults : Fault_plan.t option;
      (** deterministic fault plan injected into every query this
          runtime executes; [None] disables injection entirely *)
  domains : int;
      (** domain count for the parallel work pool (1 = sequential);
          overridden by the [MYCELIUM_DOMAINS] environment variable.
          Results are byte-identical at any domain count. *)
  trace : bool;
      (** enable the lib/obs tracing + metrics registry for this
          process ([MYCELIUM_TRACE=1] also enables it). Never affects
          results: spans and metrics observe the pipeline but do not
          touch its Rng streams or data. *)
  ledger : string option;
      (** append one audit record per query to this JSONL file
          ([MYCELIUM_LEDGER=<path>] overrides; see DESIGN.md §13 for
          the schema).  Like tracing, the ledger observes the pipeline
          and never feeds back into results. *)
}

let default_config =
  {
    params = Params.test_medium;
    committee_size = 10;
    committee_threshold = 4;
    epsilon_budget = 10.;
    degree_bound = 6;
    seed = 1L;
    byzantine_fraction = 0.;
    route_through_mixnet = None;
    relin_degree = None;
    accounting = Dp.Basic;
    faults = None;
    domains = 1;
    trace = false;
    ledger = None;
  }

(* Every parallel task derives its own Rng from a fresh per-phase seed
   and its stable coordinates, never from the runtime's [t.rng]: Rng
   handles are single-domain-owned (see lib/util/rng.mli), and the
   pre-split streams make results independent of the domain count. *)
let task_rng seed a b =
  Rng.create (Rng.mix64 seed (Rng.mix64 (Int64.of_int a) (Int64.of_int b)))

type t = {
  cfg : config;
  ctx : Bgv.ctx;
  rng : Rng.t;
  graph : Cg.t;
  pk : Bgv.public_key;
  relin : Bgv.relin_key;
  srs : Zkp.srs;
  mutable comm : Committee.t;
  budget : Dp.budget;
  byzantine : bool array;
  bulletin : Bulletin.t;
  mixnet : Sim.t option;
  mutable mixnet_ready : bool;
  ledger : Obs.Ledger.t option;
  mutable queries_run : int;
}

let public_key t = t.pk
let config t = t.cfg
let committee t = t.comm
let budget t = t.budget
let graph t = t.graph

let init cfg graph =
  Params.validate cfg.params;
  Pool.configure ~domains:cfg.domains;
  if cfg.trace then Obs.enable ();
  Obs.span "runtime.init" @@ fun () ->
  (* Graphs loaded from external data may exceed d; the sensitivity
     analysis (§3.2) needs every vertex at degree <= d, so clip
     deterministically instead of running with broken sensitivity. *)
  let graph =
    if Cg.max_degree graph > cfg.degree_bound then
      Cg.clip_to_degree_bound ~bound:cfg.degree_bound graph
    else graph
  in
  let ctx = Bgv.make_ctx cfg.params in
  let rng = Rng.create cfg.seed in
  (* Relinearization must cover the largest 1-hop local product: up to
     d neighbor rows, the origin's own row, and a filler. Multi-hop
     tests pass smaller graphs so the same bound covers them. *)
  let relin_degree =
    match cfg.relin_degree with Some d -> d | None -> cfg.degree_bound + 3
  in
  let genesis, pk, relin, srs =
    Committee.genesis ctx rng ~size:cfg.committee_size ~threshold:cfg.committee_threshold
      ~relin_degree
  in
  (* Hand the key from the genesis parties to the first device
     committee. *)
  let comm = Committee.rotate genesis rng ~population:(Cg.population graph) in
  let n = Cg.population graph in
  let n_byz = int_of_float (Float.round (float_of_int n *. cfg.byzantine_fraction)) in
  let byzantine = Array.make n false in
  Array.iter (fun i -> byzantine.(i) <- true) (Rng.sample_without_replacement rng n_byz n);
  let mixnet =
    Option.map
      (fun (mix_cfg : Sim.config) ->
        Sim.create { mix_cfg with Sim.n_devices = n; degree = cfg.degree_bound })
      cfg.route_through_mixnet
  in
  {
    cfg;
    ctx;
    rng;
    graph;
    pk;
    relin;
    srs;
    comm;
    budget = Dp.budget_create ~accounting:cfg.accounting ~total:cfg.epsilon_budget ();
    byzantine;
    bulletin = Bulletin.create ();
    mixnet;
    mixnet_ready = false;
    ledger =
      (match Sys.getenv_opt "MYCELIUM_LEDGER" with
      | Some p when not (String.equal p "") -> Some (Obs.Ledger.open_ p)
      | Some _ | None -> Option.map Obs.Ledger.open_ cfg.ledger);
    queries_run = 0;
  }

type query_error =
  | Parse_error of string
  | Analysis_error of string
  | Infeasible of string
  | Budget_exhausted of float
  | Pipeline_error of string

type query_result = {
  info : Analysis.info;
  result : Semantics.result;
  noisy_bins : float array;
  discarded_contributions : int;
  origins_included : int;
  committee_generation : int;
  committee_shares : int;
      (* decryption shares actually combined for the release *)
  mixnet_losses : int;
  mixnet_bytes : int;
      (* bytes deposited at aggregator mailboxes this query (0 over the
         abstract channel) *)
  c_rounds : int;
      (* communication cost in C-rounds: 2*hops vertex-program rounds,
         each k_mix+1 C-rounds (§3.5, §6.3) *)
  degradation : Injector.report;
}

(* Pad every contribution of a query to one wire size so mixnet
   messages are indistinguishable. *)
let pad_to size b =
  if Bytes.length b > size then invalid_arg "Runtime: contribution exceeds frame";
  let out = Bytes.make (size + 4) '\x00' in
  Bytes.set_int32_le out 0 (Int32.of_int (Bytes.length b));
  Bytes.blit b 0 out 4 (Bytes.length b);
  out

let unpad b =
  if Bytes.length b < 4 then None
  else begin
    let l = Int32.to_int (Bytes.get_int32_le b 0) in
    if l < 0 || 4 + l > Bytes.length b then None else Some (Bytes.sub b 4 l)
  end

(* Collect, for every origin, the verified neighbor rows — either over
   the abstract channel or through the mixnet. Returns
   (rows per origin, discarded count, transit losses, mixnet bytes). *)
let gather_rows t inj info =
  let n = Cg.population t.graph in
  let pool = Pool.default () in
  (* One draw from the runtime stream, then per-contribution streams
     derived from stable (contributor, destination) coordinates: builds
     can run on any domain in any order with identical output. *)
  let gather_seed = Rng.int64 t.rng in
  let discarded = ref 0 and losses = ref 0 and mix_bytes = ref 0 in
  let build_for rng dest_dev edge =
    if t.byzantine.(dest_dev) then
      (* Over-weighted value with a forged proof (§4.6's attack). *)
      Contribution.build_malicious t.ctx rng t.pk info ~exponent:1 ~coeff:200
    else Contribution.build t.srs t.ctx rng t.pk info ~dest:(Cg.vertex t.graph dest_dev) ~edge
  in
  let rows = Array.make n [] in
  (match t.mixnet with
  | Some mix when info.Analysis.query.Ast.hops = 1 ->
    (* Route every row through the onion-routing layer. *)
    if not t.mixnet_ready then begin
      let targets =
        Array.init n (fun v ->
            let neigh = List.map fst (Cg.neighbors t.graph v) in
            (* Exactly d targets per vertex (§3.2): clip an over-degree
               vertex to its first d neighbors, pad an under-degree one
               with self-loops.  Without the clip a vertex with more
               than d contacts would emit more than d circuits and break
               the sensitivity analysis. *)
            let neigh = List.filteri (fun i _ -> i < t.cfg.degree_bound) neigh in
            let pad = t.cfg.degree_bound - List.length neigh in
            Array.of_list (neigh @ List.init (max 0 pad) (fun _ -> v)))
      in
      ignore (Sim.setup_paths ~targets mix);
      t.mixnet_ready <- true
    end;
    if Injector.active inj then begin
      (* Injected transit loss rides on the simulator's replica copies
         (a dropped copy can still be covered by its siblings). *)
      Sim.set_fault_hook mix
        (Some
           (fun ~round ~source ~dest ~copy ->
             let dropped =
               Fault_plan.send_dropped (Injector.plan inj) ~round ~source ~dest
                 ~attempt:copy
             in
             if dropped then Injector.note_dropped inj;
             dropped));
      (* §6.3 default-value substitution for churned senders, decided
         up front from the plan so the report does not depend on
         delivery outcomes. *)
      for v = 0 to n - 1 do
        if not (Injector.device_offline inj ~device:v) then
          List.iter
            (fun (u, _) ->
              if Injector.device_offline inj ~device:u then Injector.note_substituted inj)
            (Cg.neighbors t.graph v)
      done
    end;
    let frame = Contribution.wire_size t.ctx info in
    (* [payload_of] is called from the simulator's parallel wrap phase:
       it must be pure, so each (source, dest) pair gets its own derived
       Rng stream instead of sharing [t.rng]. *)
    let payload_of ~source ~dest =
      if source = dest then pad_to frame (Bytes.make 1 '\x00') (* self-loop padding *)
      else begin
        let edge = Cg.edge t.graph source dest in
        pad_to frame (Contribution.to_bytes (build_for (task_rng gather_seed source dest) source edge))
      end
    in
    let stats = Sim.run_query_round_with mix ~payload_of in
    mix_bytes := stats.Sim.deposited_bytes;
    Sim.set_fault_hook mix None;
    let delivered = Array.of_list (Sim.deliveries mix) in
    (* Count expected edge messages that did not arrive. *)
    let expected = Cg.edge_count t.graph * 2 in
    let arrived = ref 0 in
    (* Parse + ZKP-verify each delivery in parallel (pure given the
       bytes), then fold the verdicts in delivery order so counters and
       per-origin row order never depend on the domain count. *)
    let verdicts =
      Pool.map_array pool
        (fun (src, dst, body) ->
          if src = dst then `Self_loop
          else if Injector.device_offline inj ~device:src then
            (* Already counted as substituted above; the delivered
               bytes of an offline device are ignored. *)
            `Offline
          else begin
            match Option.bind (unpad body) (Contribution.of_bytes t.ctx) with
            | Some row ->
              if Contribution.verify t.srs t.ctx info row then `Row row else `Bad_proof
            | None -> `Bad_bytes
          end)
        delivered
    in
    Array.iteri
      (fun i verdict ->
        let src, dst, _ = delivered.(i) in
        match verdict with
        | `Self_loop -> ()
        | `Offline -> incr arrived
        | `Row row ->
          incr arrived;
          rows.(dst) <- (src, Cg.edge t.graph dst src, row) :: rows.(dst)
        | `Bad_proof ->
          incr arrived;
          incr discarded
        | `Bad_bytes -> incr discarded)
      verdicts;
    losses := expected - !arrived
  | Some _ | None ->
    (* Abstract reliable channel: used when the experiment under
       measurement is the query pipeline, not the mixnet. Fault
       injection makes the channel droppable: each row delivery is
       retried with exponential backoff up to the plan's budget, and
       churned contributors' rows get §6.3 default-value
       substitution (the row is absent from the local aggregate).

       Three phases keep the report and rows deterministic: (1) a
       sequential pass makes every injector decision in the original
       iteration order; (2) the surviving (origin, contributor) builds
       — the dominant cost: BGV encrypt plus ZKP prove/verify — run on
       the pool with per-pair Rng streams; (3) a sequential merge
       assembles rows and counters in the original order. *)
    let tasks = ref [] in
    for origin = 0 to n - 1 do
      if not (Injector.device_offline inj ~device:origin) then begin
        let members = Cg.k_hop t.graph origin ~k:info.Analysis.query.Ast.hops in
        let parents = Cg.spanning_parents t.graph origin ~k:info.Analysis.query.Ast.hops in
        let first_edge m =
          let rec walk v =
            match Hashtbl.find_opt parents v with
            | Some p when p = origin -> Some v
            | Some p -> walk p
            | None -> None
          in
          match walk m with Some hop -> Cg.edge t.graph origin hop | None -> None
        in
        List.iter
          (fun (m, _dist) ->
            if Injector.device_offline inj ~device:m then Injector.note_substituted inj
            else if not (Injector.send inj ~round:0 ~source:m ~dest:origin) then
              (* Permanently lost after the retry budget: same shape
                 as a missing row. *)
              ()
            else tasks := (origin, m, first_edge m) :: !tasks)
          members
      end
    done;
    let tasks = Array.of_list (List.rev !tasks) in
    let built =
      Pool.map_array pool
        (fun (origin, m, edge) ->
          (* lint: allow rng-capture — task_rng is the rng.mli pre-split
             pattern: a pure Rng.mix64 derivation from (seed, coords),
             not a shared mutable stream *)
          let row = build_for (task_rng gather_seed origin m) m edge in
          (Contribution.verify t.srs t.ctx info row, row))
        tasks
    in
    Array.iteri
      (fun i (ok, row) ->
        let origin, m, edge = tasks.(i) in
        if ok then rows.(origin) <- (m, edge, row) :: rows.(origin) else incr discarded)
      built);
  (rows, !discarded, !losses, !mix_bytes)

(* Wall-clock phase durations and the charge latch for the audit
   ledger.  Diagnostic only: filled in as the pipeline runs, read once
   when the ledger record is written, never fed back into results. *)
type phase_times = {
  mutable gather_s : float;
  mutable aggregate_s : float;
  mutable summation_s : float;
  mutable decrypt_s : float;
  mutable charged : bool;
      (* set exactly when [Dp.budget_charge] succeeds, so the ledger
         reflects spend even for queries that fail after the charge *)
}

let timed set f =
  let t0 = Obs.now_s () in
  let r = f () in
  set (Obs.now_s () -. t0);
  r

(* Static admission checks, shared by the single-query path and the
   batched serving path: analysis, parameter feasibility, predicate
   placement and the multi-hop restrictions.  Pure — never touches the
   budget or any Rng stream. *)
let validate_query t query =
  let ( let* ) = Result.bind in
  let* info =
    match Analysis.analyze ~degree_bound:t.cfg.degree_bound query with
    | Ok i -> Ok i
    | Error e -> Error (Analysis_error e)
  in
  let* () =
    match Analysis.feasible info t.cfg.params with
    | Ok () -> Ok ()
    | Error e -> Error (Infeasible e)
  in
  let* () =
    (* Predicate placement must succeed before any device computes. *)
    match Semantics.split_where query.Ast.where with
    | Ok _ -> Ok ()
    | Error e -> Error (Analysis_error e)
  in
  let* () =
    (* The spanning-tree engine covers the paper's multi-hop query
       class (Q1-style ungrouped counts/sums); §4.5's sequences and
       GROUP BY packing are 1-hop constructs. *)
    if
      query.Ast.hops > 1
      && (Semantics.is_ratio info
         || info.Analysis.group_kind <> Analysis.Group_none
         || Contribution.sequence_length info > 1)
    then
      Error
        (Analysis_error
           "multi-hop queries support only ungrouped aggregation without cross-column comparisons")
    else Ok ()
  in
  Ok info

let rec run_query_ast_inner ~epsilon ~ph t query =
  let ( let* ) = Result.bind in
  let* info = validate_query t query in
  let* () =
    (* epsilon = infinity means "release exactly" — a debugging mode
       that bypasses privacy entirely, so it is not budget-charged. *)
    if epsilon = Float.infinity then Ok ()
    else begin
      match Dp.budget_charge t.budget epsilon with
      | Ok () ->
        ph.charged <- true;
        Ok ()
      | Error (`Exhausted r) -> Error (Budget_exhausted r)
    end
  in
  (* One injector per query: the plan's decisions are stateless, the
     injector only accumulates the degradation report. *)
  let inj = Injector.create (Option.value t.cfg.faults ~default:Fault_plan.none) in
  let rows, discarded_rows, mixnet_losses, mixnet_bytes =
    timed
      (fun dt -> ph.gather_s <- dt)
      (fun () ->
        Obs.span "query.gather"
          ~attrs:[ ("hops", Obs.Json.Int query.Ast.hops) ]
          (fun () -> gather_rows t inj info))
  in
  let* linear, origins_included, discarded =
    aggregate_phase ~ph t inj info rows ~discarded_rows
  in
  (* Crashed committee members never answer; decryption still
     succeeds with any threshold+1 of the remaining live shares. *)
  let excluded =
    Fault_plan.crashed_members (Injector.plan inj)
      ~size:(Committee.committee_size t.comm)
  in
  if Injector.active inj then Injector.note_excluded_committee inj (List.length excluded);
  (match
     timed
       (fun dt -> ph.decrypt_s <- dt)
       (fun () ->
         Obs.span "query.decrypt" (fun () ->
             Committee.decrypt_and_release ~excluded t.comm t.rng t.ctx ~info ~epsilon
               linear))
   with
  | Error e -> Error (Pipeline_error e)
  | Ok release ->
    if Injector.active inj then
      Injector.note_decryption_attempts inj release.Committee.attempts;
    (* Rotate the committee for the next query (§4.2). *)
    t.comm <- Committee.rotate t.comm t.rng ~population:(Cg.population t.graph);
    let mix_hops =
      match t.cfg.route_through_mixnet with Some c -> c.Sim.hops | None -> 3
    in
    Ok
      {
        info;
        result = release.Committee.result;
        noisy_bins = release.Committee.noisy_bins;
        discarded_contributions = discarded;
        origins_included;
        committee_generation = Committee.generation t.comm - 1;
        committee_shares = Array.length release.Committee.participants;
        mixnet_losses;
        mixnet_bytes;
        c_rounds = 2 * query.Ast.hops * (mix_hops + 1);
        degradation = Injector.report inj;
      })

(* Every origin aggregates its neighborhood and submits (Byzantine
   origins submit garbage with forged transcript proofs), then the
   aggregator builds the §4.2 summation tree — probe audit and restart
   drill included — and performs the §5 deferred relinearization.
   Shared by the single-query path and the batched serving path.
   Returns the degree-1 aggregate, origins included and the total
   discarded count. *)
and aggregate_phase ~ph t inj info rows ~discarded_rows =
  let n = Cg.population t.graph in
  let discarded = ref discarded_rows in
  let origin_cts = ref [] in
  let origins_included = ref 0 in
  (* Multi-hop local aggregation follows the §4.4 spanning tree:
     vertices at distance k send their (verified) contributions to
     their upstream neighbors, interior vertices multiply children with
     their own row and prove the product, and so on up to the origin.
     A Byzantine interior vertex's forged product is caught by the
     aggregator and its whole subtree is lost — the bias §4.7
     acknowledges. *)
  let tree_aggregate ~rng origin =
    let local_discarded = ref 0 in
    let hops = info.Analysis.query.Ast.hops in
    let parents = Cg.spanning_parents t.graph origin ~k:hops in
    let members = Cg.k_hop t.graph origin ~k:hops in
    let children = Hashtbl.create 16 in
    (* lint: allow determinism — inverts the parents map; OCaml hash tables
       iterate reproducibly for a fixed insertion sequence (no seed), and
       parents is built deterministically, so child order is stable *)
    Hashtbl.iter
      (fun child parent ->
        Hashtbl.replace children parent (child :: Option.value ~default:[] (Hashtbl.find_opt children parent)))
      parents;
    let contribution_of = Hashtbl.create 16 in
    List.iter (fun (m, _, (row : Contribution.t)) -> Hashtbl.replace contribution_of m row) rows.(origin);
    (* Partial products, deepest first. *)
    let by_depth = List.sort (fun (_, d1) (_, d2) -> Int.compare d2 d1) members in
    let products = Hashtbl.create 16 in
    List.iter
      (fun (m, _) ->
        if not (t.byzantine.(m)) then begin
          let own =
            Option.map (fun (r : Contribution.t) -> r.Contribution.ciphertexts.(0))
              (Hashtbl.find_opt contribution_of m)
          in
          let kids =
            List.filter_map (fun c -> Hashtbl.find_opt products c)
              (Option.value ~default:[] (Hashtbl.find_opt children m))
          in
          match Contribution.aggregate_subtree t.srs ~own ~children:kids with
          | Ok (product, proof) ->
            if Zkp.verify_transcript t.srs ~label:"subtree-aggregation" ~context:Bytes.empty
                 ~inputs:(match own with Some ct -> ct :: kids | None -> kids)
                 ~output:product proof
            then Hashtbl.replace products m product
            else incr local_discarded
          | Error _ -> ()
        end
        else begin
          (* Byzantine interior vertex: garbage product, forged proof —
             rejected, subtree lost. *)
          incr local_discarded
        end)
      by_depth;
    (* The origin multiplies its own row with its children's products
       (gate and shifts handled by aggregate_origin with the direct
       children's products standing in as rows is not possible for
       products — do it directly). *)
    let self = Cg.vertex t.graph origin in
    let result =
      if not (Semantics.origin_gate info self) then
        Ok (Bgv.encrypt_zero_polynomial t.ctx rng t.pk)
      else begin
        let own_ctx_row = { Semantics.self; dest = self; edge = None } in
        let own_ct = Bgv.encrypt_value t.ctx rng t.pk (Semantics.row_value info own_ctx_row) in
        let kids =
          List.filter_map (fun c -> Hashtbl.find_opt products c)
            (Option.value ~default:[] (Hashtbl.find_opt children origin))
        in
        match Contribution.aggregate_subtree t.srs ~own:(Some own_ct) ~children:kids with
        | Ok (product, _proof) -> Ok product
        | Error e -> Error e
      end
    in
    (result, !local_discarded)
  in
  (* Per-origin aggregation (BGV ops plus transcript proofs) runs on
     the pool: each origin's work is pure given its own derived Rng
     stream and read-only runtime state.  Injector lookups inside the
     tasks are stateless plan queries; the report counters are applied
     in the sequential merge below, in ascending-origin order, so the
     degradation report is identical at any domain count. *)
  let agg_seed = Rng.int64 t.rng in
  let pool = Pool.default () in
  let outcomes =
    timed (fun dt -> ph.aggregate_s <- dt) @@ fun () ->
    Obs.span "query.aggregate" ~attrs:[ ("origins", Obs.Json.Int n) ] @@ fun () ->
    Pool.init pool n (fun origin ->
        (* lint: allow rng-capture — task_rng is the rng.mli pre-split
           pattern; the task-local generator is derived, never shared *)
        let rng = task_rng agg_seed origin 0 in
        if Injector.device_offline inj ~device:origin then
          (* Offline origin: the aggregator substitutes the §6.3 default
             value — an encryption of zero — so the leaf count (and every
             honest device's audit position) is unchanged. *)
          `Substituted (Bgv.encrypt_zero_polynomial t.ctx rng t.pk)
        else if t.byzantine.(origin) || Injector.contribution_forged inj ~device:origin
        then begin
          let bad = Contribution.build_malicious t.ctx rng t.pk info ~exponent:2 ~coeff:999 in
          let forged = Zkp.forge rng in
          (* The aggregator checks the transcript proof and discards. *)
          if
            Zkp.verify_transcript t.srs ~label:"origin-aggregation"
              ~context:(Bytes.of_string info.Analysis.query.Ast.name)
              ~inputs:[ bad.Contribution.ciphertexts.(0) ]
              ~output:bad.Contribution.ciphertexts.(0) forged
          then `Forged_accepted bad.Contribution.ciphertexts.(0)
          else `Forged_rejected t.byzantine.(origin)
        end
        else if info.Analysis.query.Ast.hops > 1 then begin
          match tree_aggregate ~rng origin with
          | Ok ct, dropped -> `Included (ct, dropped)
          | Error _, dropped -> `Failed dropped
        end
        else begin
          match
            Contribution.aggregate_origin t.srs t.ctx rng t.pk info
              ~self:(Cg.vertex t.graph origin)
              ~rows:(List.map (fun (_, e, r) -> (e, r)) rows.(origin))
          with
          | Ok (ct, _proof) -> `Included (ct, 0)
          | Error _ -> `Failed 0
        end)
  in
  Array.iter
    (function
      | `Substituted ct ->
        Injector.note_substituted inj;
        origin_cts := ct :: !origin_cts
      | `Forged_accepted ct -> origin_cts := ct :: !origin_cts
      | `Forged_rejected byzantine ->
        incr discarded;
        if not byzantine then Injector.note_forged_rejected inj
      | `Included (ct, dropped) ->
        discarded := !discarded + dropped;
        incr origins_included;
        origin_cts := ct :: !origin_cts
      | `Failed dropped ->
        discarded := !discarded + dropped;
        incr discarded)
    outcomes;
  match !origin_cts with
  | [] -> Error (Pipeline_error "no valid origin contributions")
  | _ ->
    (* Summation tree (§4.2): the aggregator sums up a committed binary
       tree so every device can audit that its contribution is included
       exactly once; the root goes on the bulletin board. *)
    let leaves = Array.of_list !origin_cts in
    let tree =
      timed
        (fun dt -> ph.summation_s <- dt)
        (fun () ->
          Obs.span "query.summation"
            ~attrs:[ ("leaves", Obs.Json.Int (Array.length leaves)) ]
            (fun () -> Summation_tree.build leaves))
    in
    ignore (Bulletin.post t.bulletin ~author:"aggregator" (Summation_tree.root_hash tree));
    (* Play one device's audit as a self-check of the commitment. *)
    let probe = Rng.int t.rng (Array.length leaves) in
    if
      not
        (Summation_tree.verify_audit leaves.(probe)
           ~root_hash:(Summation_tree.root_hash tree)
           ~root_sum:(Summation_tree.root_sum tree)
           ~leaf_count:(Summation_tree.leaf_count tree)
           (Summation_tree.audit tree probe))
    then failwith "Runtime: summation-tree audit failed (aggregator bug)";
    (* Aggregator-restart drill: each injected crash rebuilds the tree
       from the durable leaves; the recovered tree must commit to the
       identical root or the aggregator would fail its own audits. *)
    let tree =
      match t.cfg.faults with
      | Some plan when plan.Fault_plan.aggregator_restarts > 0 ->
        let recovered = ref tree in
        for _ = 1 to plan.Fault_plan.aggregator_restarts do
          Injector.note_aggregator_restart inj;
          recovered := Summation_tree.rebuild !recovered
        done;
        if
          not
            (Bytes.equal
               (Summation_tree.root_hash !recovered)
               (Summation_tree.root_hash tree))
        then failwith "Runtime: restarted aggregator diverged from its committed root";
        !recovered
      | _ -> tree
    in
    let sum = Summation_tree.root_sum tree in
    (* Deferred relinearization at the aggregator (§5). *)
    let linear =
      if Bgv.degree sum <= 1 then sum else Bgv.relinearize t.ctx t.relin sum
    in
    Ok (linear, !origins_included, !discarded)

let degradation_json (r : Injector.report) =
  Obs.Json.Obj
    [
      ("substituted_contributions", Obs.Json.Int r.Injector.substituted_contributions);
      ("dropped_messages", Obs.Json.Int r.Injector.dropped_messages);
      ("delayed_messages", Obs.Json.Int r.Injector.delayed_messages);
      ("channel_retries", Obs.Json.Int r.Injector.channel_retries);
      ("backoff_units", Obs.Json.Int r.Injector.backoff_units);
      ("excluded_committee_members", Obs.Json.Int r.Injector.excluded_committee_members);
      ("forged_rejected", Obs.Json.Int r.Injector.forged_rejected);
      ("aggregator_restarts", Obs.Json.Int r.Injector.aggregator_restarts);
      ("decryption_attempts", Obs.Json.Int r.Injector.decryption_attempts);
    ]

(* One append-only audit record per query (DESIGN.md §13).  [epsilon]
   is [Null] unless the budget charge actually happened, so summing the
   "epsilon" field over a ledger reproduces [Dp.budget_spent] exactly —
   including queries that failed after the charge.  (It also keeps the
   encoding total: epsilon = infinity is never charged, and IEEE
   infinities are not representable in JSON.) *)
let ledger_entry t ~qid ~query ~epsilon ~ph res =
  let open Obs.Json in
  let status, error_kind =
    match res with
    | Ok _ -> ("ok", None)
    | Error (Budget_exhausted _) -> ("rejected", Some "budget_exhausted")
    | Error (Parse_error _) -> ("error", Some "parse")
    | Error (Analysis_error _) -> ("error", Some "analysis")
    | Error (Infeasible _) -> ("error", Some "infeasible")
    | Error (Pipeline_error _) -> ("error", Some "pipeline")
  in
  let accounting_fields =
    match t.cfg.accounting with
    | Dp.Basic -> [ ("accounting", Str "basic") ]
    | Dp.Advanced { delta } -> [ ("accounting", Str "advanced"); ("delta", Num delta) ]
  in
  let result_fields =
    match res with
    | Ok r ->
      [
        ("sensitivity", Num r.info.Analysis.sensitivity);
        ( "clip",
          match r.info.Analysis.clip with
          | Some (lo, hi) -> List [ Num lo; Num hi ]
          | None -> Null );
        ("influence_bound", Int r.info.Analysis.influence_bound);
        ("origins_included", Int r.origins_included);
        ("discarded_contributions", Int r.discarded_contributions);
        ("mixnet_bytes", Int r.mixnet_bytes);
        ("mixnet_losses", Int r.mixnet_losses);
        ("c_rounds", Int r.c_rounds);
        ( "committee",
          Obj
            [
              ("size", Int t.cfg.committee_size);
              ("threshold", Int t.cfg.committee_threshold);
              ("shares_used", Int r.committee_shares);
              ("generation", Int r.committee_generation);
            ] );
        ("degradation", degradation_json r.degradation);
      ]
    | Error _ -> (
      match error_kind with Some k -> [ ("error", Str k) ] | None -> [])
  in
  Obj
    ([
       ("schema", Str "mycelium-ledger/1");
       ("query", Int qid);
       ("name", Str query.Ast.name);
       ("hops", Int query.Ast.hops);
       ("status", Str status);
       ("charged", Bool ph.charged);
       ("epsilon", if ph.charged then Num epsilon else Null);
       ("degree_bound", Int t.cfg.degree_bound);
     ]
    @ accounting_fields
    @ [
        ( "phases",
          Obj
            [
              ("gather_s", Num ph.gather_s);
              ("aggregate_s", Num ph.aggregate_s);
              ("summation_s", Num ph.summation_s);
              ("decrypt_s", Num ph.decrypt_s);
            ] );
      ]
    @ result_fields
    @ [
        ("budget_total", Num t.cfg.epsilon_budget);
        ("budget_spent", Num (Dp.budget_spent t.budget));
        ("budget_remaining", Num (Dp.budget_remaining t.budget));
      ])

(* lint: allow epsilon-flow — the 1.0 default is the documented
   single-query debugging convenience; serving paths always pass the
   epsilon parsed from the workload line, and the serving layer
   refuses to admit requests that never charge (Unbudgeted). *)
let run_query_ast ?(epsilon = 1.0) t query =
  t.queries_run <- t.queries_run + 1;
  let qid = t.queries_run in
  let ph =
    { gather_s = 0.; aggregate_s = 0.; summation_s = 0.; decrypt_s = 0.; charged = false }
  in
  let res = run_query_ast_inner ~epsilon ~ph t query in
  (match t.ledger with
  | Some l -> Obs.Ledger.append l (ledger_entry t ~qid ~query ~epsilon ~ph res)
  | None -> ());
  res

let run_query ?epsilon t src =
  match Parser.parse src with
  | Error e -> Error (Parse_error (Printf.sprintf "at %d: %s" e.Parser.position e.Parser.message))
  | Ok q -> run_query_ast ?epsilon t q

(* ------------------------------------------------------------------ *)
(* Batched serving entry points (DESIGN.md §14)                        *)
(* ------------------------------------------------------------------ *)

type prepared = {
  p_info : Analysis.info;
  p_ct : Bgv.ciphertext;
  p_origins_included : int;
  p_discarded : int;
  p_mixnet_losses : int;
  p_mixnet_bytes : int;
  p_degradation : Injector.report;
}

type batch_item = {
  bi_query : Ast.t;
  bi_epsilon : float;
  bi_noise_seed : int64;
  bi_fault_round : int;
  bi_cached : prepared option;
}

let prepared_info p = p.p_info

(* Gather rows for several 1-hop queries in a single mixnet query
   round: each (source, dest) message carries the concatenation of one
   padded frame per batch member, so the whole batch pays one
   round-trip of C-rounds instead of one per query.

   Injected transit loss is applied per member at slice time, from the
   member's own logical fault coordinate [bi_fault_round] — a pure
   function of the member's identity, never of the shared physical
   round counter — replaying the per-replica-copy drop semantics of
   the single-query path.  This is what makes a member's gathered rows
   (and so its released bytes) independent of who shares the physical
   round: the same member in a batch of one or a batch of eight sees
   the same drop decisions.  (The simulator's own churn/malicious
   losses, when configured, remain physical and hit the whole
   concatenated frame.) *)
let gather_rows_mixnet_batch t mix members =
  (* members : (info, injector, fault_round) array; every query in it
     has hops = 1 (checked by the caller). *)
  let n = Cg.population t.graph in
  let pool = Pool.default () in
  let k = Array.length members in
  if not t.mixnet_ready then begin
    let targets =
      Array.init n (fun v ->
          let neigh = List.map fst (Cg.neighbors t.graph v) in
          let neigh = List.filteri (fun i _ -> i < t.cfg.degree_bound) neigh in
          let pad = t.cfg.degree_bound - List.length neigh in
          Array.of_list (neigh @ List.init (max 0 pad) (fun _ -> v)))
    in
    ignore (Sim.setup_paths ~targets mix);
    t.mixnet_ready <- true
  end;
  (* §6.3 default-value substitution for churned senders, decided up
     front from each member's plan so its report does not depend on
     delivery outcomes. *)
  Array.iter
    (fun (_, inj, _) ->
      if Injector.active inj then
        for v = 0 to n - 1 do
          if not (Injector.device_offline inj ~device:v) then
            List.iter
              (fun (u, _) ->
                if Injector.device_offline inj ~device:u then
                  Injector.note_substituted inj)
              (Cg.neighbors t.graph v)
        done)
    members;
  let frames = Array.map (fun (info, _, _) -> Contribution.wire_size t.ctx info) members in
  let padded = Array.map (fun f -> f + 4) frames in
  let offsets = Array.make k 0 in
  for i = 1 to k - 1 do
    offsets.(i) <- offsets.(i - 1) + padded.(i - 1)
  done;
  let body_len = offsets.(k - 1) + padded.(k - 1) in
  let gather_seeds = Array.map (fun _ -> Rng.int64 t.rng) members in
  let build_for info rng contributor edge =
    if t.byzantine.(contributor) then
      Contribution.build_malicious t.ctx rng t.pk info ~exponent:1 ~coeff:200
    else
      Contribution.build t.srs t.ctx rng t.pk info
        ~dest:(Cg.vertex t.graph contributor) ~edge
  in
  (* Pure per-pair payload (the simulator probes and parallelizes it):
     one padded frame per member, concatenated at fixed offsets. *)
  let payload_of ~source ~dest =
    let out = Bytes.create body_len in
    Array.iteri
      (fun i (info, _, _) ->
        let frame =
          if source = dest then pad_to frames.(i) (Bytes.make 1 '\x00')
          else
            pad_to frames.(i)
              (Contribution.to_bytes
                 (build_for info (task_rng gather_seeds.(i) source dest) source
                    (Cg.edge t.graph source dest)))
        in
        Bytes.blit frame 0 out offsets.(i) padded.(i))
      members;
    out
  in
  let stats = Sim.run_query_round_with mix ~payload_of in
  let delivered = Array.of_list (Sim.deliveries mix) in
  let replicas =
    match t.cfg.route_through_mixnet with Some c -> c.Sim.replicas | None -> 1
  in
  let expected = Cg.edge_count t.graph * 2 in
  (* Parse + ZKP-verify every member's slice of every delivery in
     parallel (pure given the bytes and the stateless plan decisions),
     then fold the verdicts in delivery order per member so counters
     and per-origin row order never depend on the domain count. *)
  let verdicts =
    Pool.map_array pool
      (fun (src, dst, body) ->
        if src = dst then Array.make k `Self_loop
        else
          Array.mapi
            (fun i (info, inj, fault_round) ->
              let dropped_copies =
                if not (Injector.active inj) then 0
                else begin
                  let d = ref 0 in
                  for copy = 0 to replicas - 1 do
                    if
                      Fault_plan.send_dropped (Injector.plan inj) ~round:fault_round
                        ~source:src ~dest:dst ~attempt:copy
                    then incr d
                  done;
                  !d
                end
              in
              if dropped_copies >= replicas then `Lost dropped_copies
              else if Injector.device_offline inj ~device:src then `Offline dropped_copies
              else begin
                let slice = Bytes.sub body offsets.(i) padded.(i) in
                match Option.bind (unpad slice) (Contribution.of_bytes t.ctx) with
                | Some row ->
                  if Contribution.verify t.srs t.ctx info row then `Row (dropped_copies, row)
                  else `Bad_proof dropped_copies
                | None -> `Bad_bytes dropped_copies
              end)
            members)
      delivered
  in
  Array.init k (fun i ->
      let _, inj, _ = members.(i) in
      let rows = Array.make n [] in
      let discarded = ref 0 and arrived = ref 0 in
      let note_drops c =
        if Injector.active inj then
          for _ = 1 to c do
            Injector.note_dropped inj
          done
      in
      Array.iteri
        (fun j verdict_row ->
          let src, dst, _ = delivered.(j) in
          match verdict_row.(i) with
          | `Self_loop -> ()
          | `Lost c -> note_drops c
          | `Offline c ->
            note_drops c;
            incr arrived
          | `Row (c, row) ->
            note_drops c;
            incr arrived;
            rows.(dst) <- (src, Cg.edge t.graph dst src, row) :: rows.(dst)
          | `Bad_proof c ->
            note_drops c;
            incr arrived;
            incr discarded
          | `Bad_bytes c ->
            note_drops c;
            incr discarded)
        verdicts;
      (* The shared round's deposited bytes are attributed in
         proportion to each member's share of the frame. *)
      let bytes_share = stats.Sim.deposited_bytes * padded.(i) / body_len in
      (rows, !discarded, expected - !arrived, bytes_share))

let run_batch t items =
  match items with
  | [] -> []
  | _ :: _ ->
    let items = Array.of_list items in
    let k = Array.length items in
    let qids =
      Array.map
        (fun _ ->
          t.queries_run <- t.queries_run + 1;
          t.queries_run)
        items
    in
    let phs =
      Array.map
        (fun _ ->
          {
            gather_s = 0.;
            aggregate_s = 0.;
            summation_s = 0.;
            decrypt_s = 0.;
            charged = false;
          })
        items
    in
    (* Admission: static validation, then the budget charge — both in
       submission order, so the rejection order under a full budget is
       deterministic. epsilon = infinity keeps the legacy "release
       exactly, never charged" debug semantics; the serving layer
       refuses to admit it without an explicit override. *)
    let states =
      Array.mapi
        (fun i it ->
          match validate_query t it.bi_query with
          | Error e -> Error e
          | Ok info ->
            if it.bi_epsilon = Float.infinity then Ok info
            else begin
              match Dp.budget_charge t.budget it.bi_epsilon with
              | Ok () ->
                phs.(i).charged <- true;
                Ok info
              | Error (`Exhausted r) -> Error (Budget_exhausted r)
            end)
        items
    in
    let injs =
      Array.map
        (fun _ -> Injector.create (Option.value t.cfg.faults ~default:Fault_plan.none))
        items
    in
    (* Members that still need gather + aggregation (a cache hit skips
       both). 1-hop members share one mixnet round when the runtime
       routes through the mixnet; everything else gathers over the
       abstract channel, whose fault decisions are already
       coordinate-pure (never round-counter dependent). *)
    let fresh =
      List.filter_map
        (fun i ->
          match (states.(i), items.(i).bi_cached) with
          | Ok info, None -> Some (i, info)
          | Ok _, Some _ | Error _, _ -> None)
        (List.init k Fun.id)
    in
    let mix_members, abstract_members =
      match t.mixnet with
      | Some _ -> List.partition (fun (_, info) -> info.Analysis.query.Ast.hops = 1) fresh
      | None -> ([], fresh)
    in
    let gathered = Hashtbl.create 8 in
    (match (t.mixnet, mix_members) with
    | Some mix, _ :: _ ->
      let arr =
        Array.of_list
          (List.map
             (fun (i, info) -> (info, injs.(i), items.(i).bi_fault_round))
             mix_members)
      in
      let weights =
        List.map (fun (_, info) -> Contribution.wire_size t.ctx info + 4) mix_members
      in
      let total_w = List.fold_left ( + ) 0 weights in
      let t0 = Obs.now_s () in
      let per =
        Obs.span "batch.gather"
          ~attrs:[ ("members", Obs.Json.Int (List.length mix_members)) ]
          (fun () -> gather_rows_mixnet_batch t mix arr)
      in
      let dt = Obs.now_s () -. t0 in
      List.iteri
        (fun j (i, _) ->
          (* The shared round-trip's wall clock is attributed in
             proportion to each member's share of the frame bytes. *)
          phs.(i).gather_s <-
            dt *. float_of_int (List.nth weights j) /. float_of_int total_w;
          Hashtbl.replace gathered i per.(j))
        mix_members
    | Some _, [] | None, _ -> ());
    List.iter
      (fun (i, info) ->
        let g =
          timed
            (fun dt -> phs.(i).gather_s <- dt)
            (fun () ->
              Obs.span "query.gather"
                ~attrs:[ ("hops", Obs.Json.Int info.Analysis.query.Ast.hops) ]
                (fun () -> gather_rows t injs.(i) info))
        in
        Hashtbl.replace gathered i g)
      abstract_members;
    (* Aggregation per member: each member's summation tree is its own,
       timed individually — only the genuinely shared phases (the
       gather round-trip, the decryption session) are split. *)
    let prepareds = Array.make k None in
    Array.iteri
      (fun i it ->
        match states.(i) with
        | Error _ -> ()
        | Ok info -> (
          match it.bi_cached with
          | Some p -> prepareds.(i) <- Some p
          | None -> (
            match Hashtbl.find_opt gathered i with
            | None -> ()
            | Some (rows, discarded_rows, losses, bytes) -> (
              match aggregate_phase ~ph:phs.(i) t injs.(i) info rows ~discarded_rows with
              | Error e -> states.(i) <- Error e
              | Ok (linear, origins, discarded) ->
                prepareds.(i) <-
                  Some
                    {
                      p_info = info;
                      p_ct = linear;
                      p_origins_included = origins;
                      p_discarded = discarded;
                      p_mixnet_losses = losses;
                      p_mixnet_bytes = bytes;
                      p_degradation = Injector.report injs.(i);
                    }))))
      items;
    (* One committee threshold-decryption session for the whole batch,
       cached members included. *)
    let results = Array.make k None in
    let decrypt_idx =
      List.filter_map
        (fun i -> match prepareds.(i) with Some p -> Some (i, p) | None -> None)
        (List.init k Fun.id)
    in
    (match decrypt_idx with
    | [] -> ()
    | _ :: _ ->
      let plan = Option.value t.cfg.faults ~default:Fault_plan.none in
      let excluded =
        Fault_plan.crashed_members plan ~size:(Committee.committee_size t.comm)
      in
      List.iter
        (fun (i, _) ->
          if Injector.active injs.(i) then
            Injector.note_excluded_committee injs.(i) (List.length excluded))
        decrypt_idx;
      let members =
        List.map
          (fun (i, p) ->
            ( {
                Committee.b_info = p.p_info;
                b_epsilon = items.(i).bi_epsilon;
                b_noise_rng = Rng.create items.(i).bi_noise_seed;
              },
              p.p_ct ))
          decrypt_idx
      in
      let total_bins =
        List.fold_left
          (fun acc (_, p) -> acc + p.p_info.Analysis.layout.Analysis.total_bins)
          0 decrypt_idx
      in
      let t0 = Obs.now_s () in
      let res =
        Obs.span "batch.decrypt"
          ~attrs:[ ("members", Obs.Json.Int (List.length members)) ]
          (fun () -> Committee.decrypt_batch ~excluded t.comm t.rng t.ctx ~members)
      in
      let dt = Obs.now_s () -. t0 in
      List.iter
        (fun (i, p) ->
          (* The shared session's wall clock is attributed in proportion
             to each member's share of the concatenated plaintext
             windows. *)
          phs.(i).decrypt_s <-
            dt
            *. float_of_int p.p_info.Analysis.layout.Analysis.total_bins
            /. float_of_int total_bins)
        decrypt_idx;
      (match res with
      | Error e ->
        List.iter (fun (i, _) -> states.(i) <- Error (Pipeline_error e)) decrypt_idx
      | Ok releases ->
        t.comm <- Committee.rotate t.comm t.rng ~population:(Cg.population t.graph);
        let mix_hops =
          match t.cfg.route_through_mixnet with Some c -> c.Sim.hops | None -> 3
        in
        List.iter2
          (fun (i, p) (release : Committee.release) ->
            if Injector.active injs.(i) then
              Injector.note_decryption_attempts injs.(i) release.Committee.attempts;
            let degradation =
              (* A cache hit never re-runs gather, so its degradation
                 report is the frozen snapshot of the execution that
                 filled the cache (deterministic: a recomputation would
                 reproduce it decision for decision). *)
              match items.(i).bi_cached with
              | Some cached -> cached.p_degradation
              | None -> Injector.report injs.(i)
            in
            results.(i) <-
              Some
                ( {
                    info = p.p_info;
                    result = release.Committee.result;
                    noisy_bins = release.Committee.noisy_bins;
                    discarded_contributions = p.p_discarded;
                    origins_included = p.p_origins_included;
                    committee_generation = Committee.generation t.comm - 1;
                    committee_shares = Array.length release.Committee.participants;
                    mixnet_losses = p.p_mixnet_losses;
                    mixnet_bytes = p.p_mixnet_bytes;
                    c_rounds = 2 * items.(i).bi_query.Ast.hops * (mix_hops + 1);
                    degradation;
                  },
                  p ))
          decrypt_idx releases));
    let out =
      List.init k (fun i ->
          match results.(i) with
          | Some rp -> Ok rp
          | None -> (
            match states.(i) with
            | Error e -> Error e
            | Ok _ -> Error (Pipeline_error "batch member was not decrypted")))
    in
    (* One mycelium-ledger/1 row per batch member, in submission order,
       with its own charged epsilon and its (proportionally attributed)
       phase durations — summing the "epsilon" field over the ledger
       still reproduces [Dp.budget_spent] bit for bit. *)
    (match t.ledger with
    | Some l ->
      List.iteri
        (fun i res ->
          let res = Result.map (fun (r, _) -> r) res in
          Obs.Ledger.append l
            (ledger_entry t ~qid:qids.(i) ~query:items.(i).bi_query
               ~epsilon:items.(i).bi_epsilon ~ph:phs.(i) res))
        out
    | None -> ());
    out

let exact_bins_for_tests t info = Semantics.global_histogram info t.graph
